"""Simplified TCP: connection setup, sliding window, Reno congestion control.

Implements what the paper's workloads exercise — bulk transfer with
socket-buffer-limited windows (ttcp -t with 256 KB buffers) — on top of
a full Reno state machine (see ``docs/congestion.md``):

* slow start and AIMD congestion avoidance split by ``ssthresh``, with
  the sender's phase tracked explicitly in :class:`CongestionState`;
* fast retransmit on three duplicate ACKs, retransmitting only the
  hole at ``snd_una`` (not the whole window), then NewReno-style fast
  recovery: window inflation per additional dup-ACK, partial-ACK hole
  retransmission, deflation to ``ssthresh`` on full recovery;
* SACK: the receiver buffers out-of-order data as merged intervals and
  advertises up to three blocks; the sender keeps a scoreboard so hole
  retransmissions stop at SACKed data;
* adaptive RTO per RFC 6298 (SRTT/RTTVAR EWMA) with Karn's algorithm
  (retransmitted segments are never RTT-sampled) and exponential
  backoff, falling back to go-back-N on timeout;
* flow control from the receive buffer (out-of-order bytes count
  against the advertised window).

Nagle and delayed ACK are deliberately omitted.  The simulated links
are lossless unless a fault is injected or a queue tail-drops, so the
clean path stays in slow start (``ssthresh`` starts at infinity) and
is bit-identical to the pre-Reno machinery; congestion response is
exercised by the chaos tests and the ``fairness`` experiment family.

Non-kernel connections publish ``cwnd``/``ssthresh``/state as
timestamped gauges (``tcp.cc.<stack>.<lport>-<rport>.*``) in
:mod:`repro.obs.metrics`, so sim-time-weighted window averages come
for free via :meth:`Gauge.time_avg <repro.obs.metrics.Gauge.time_avg>`.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..sim import Event, Signal, Simulator
from .base import next_pdu_id
from .ip import PROTO_TCP

if TYPE_CHECKING:  # pragma: no cover
    from .stack import Stack

__all__ = [
    "TCP_HEADER",
    "CongestionState",
    "TcpSegment",
    "TcpConnection",
    "TcpListener",
    "TcpState",
]

TCP_HEADER = 20
# SACK option on-the-wire cost: kind + length + padding (4) plus two
# 4-byte sequence numbers per block (RFC 2018).
SACK_OPTION_BASE = 4
SACK_BLOCK_BYTES = 8


@dataclass(slots=True)
class TcpSegment:
    """One TCP segment; ``size`` covers the TCP header + payload bytes
    plus SACK option bytes when blocks are present."""

    sport: int
    dport: int
    seq: int
    ack: int
    payload_bytes: int = 0
    syn: bool = False
    fin: bool = False
    is_ack: bool = True
    rwnd: int = 1 << 30
    # SACK blocks: (start, end) byte ranges the receiver holds above the
    # cumulative ACK.  Empty on the clean path, so segment sizes there
    # are identical to a SACK-less stack.
    sack: tuple = ()
    # Simulation bookkeeping: SYN/SYNACK segments carry a reference to the
    # sending endpoint so the two TcpConnection objects can pair up (used
    # for message framing; see TcpMessageChannel).
    conn_ref: Optional["TcpConnection"] = None
    id: int = field(default_factory=next_pdu_id)

    @property
    def size(self) -> int:
        opt = SACK_OPTION_BASE + SACK_BLOCK_BYTES * len(self.sack) if self.sack else 0
        return TCP_HEADER + opt + self.payload_bytes


class TcpState(enum.Enum):
    CLOSED = "closed"
    SYN_SENT = "syn-sent"
    SYN_RECEIVED = "syn-received"
    ESTABLISHED = "established"
    FIN_WAIT = "fin-wait"
    CLOSE_WAIT = "close-wait"


class CongestionState(enum.Enum):
    """Reno sender phase (RFC 5681/6582).

    ``SLOW_START`` doubles the window per RTT until ``ssthresh``;
    ``CONGESTION_AVOIDANCE`` grows one MSS per RTT; ``FAST_RECOVERY``
    is entered on the third duplicate ACK and left (deflating to
    ``ssthresh``) when the cumulative ACK passes the recovery point.
    An RTO always falls back to ``SLOW_START`` with ``cwnd = 1 MSS``.
    """

    SLOW_START = "slow-start"
    CONGESTION_AVOIDANCE = "congestion-avoidance"
    FAST_RECOVERY = "fast-recovery"


# Stable numeric encoding for the cc-state gauge.
CC_STATE_CODE = {
    CongestionState.SLOW_START: 0,
    CongestionState.CONGESTION_AVOIDANCE: 1,
    CongestionState.FAST_RECOVERY: 2,
}


class TcpConnection:
    """One endpoint of a TCP connection over a simulated stack."""

    # RTO floor: Linux uses 200 ms; we scale it down for simulation
    # turnaround but keep it well above any queue-inflated LAN RTT so
    # timeouts are real losses, not bufferbloat (fast retransmit handles
    # the common single-loss case without waiting for this).
    MIN_RTO_NS = 10_000_000       # 10 ms
    INITIAL_CWND_SEGMENTS = 10

    def __init__(
        self,
        stack: "Stack",
        local_port: int,
        remote_ip: str,
        remote_port: int,
        sndbuf: int = 256 * 1024,
        rcvbuf: int = 256 * 1024,
        in_kernel: bool = False,
    ):
        self.stack = stack
        self.sim: Simulator = stack.sim
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.sndbuf = sndbuf
        self.rcvbuf = rcvbuf
        self.in_kernel = in_kernel
        self.state = TcpState.CLOSED

        dev, _ = stack.route(remote_ip)
        self.mss = dev.mtu - TCP_HEADER - 20  # IP header

        # Sender state (byte sequence space).
        self.snd_una = 0              # oldest unacknowledged
        self.snd_nxt = 0              # next to send
        self.app_written = 0          # bytes the app has handed to the socket
        self.cwnd = self.INITIAL_CWND_SEGMENTS * self.mss
        self.ssthresh = 1 << 30
        self.peer_rwnd = 1 << 30
        # Right edge of the peer's advertised window (ack + rwnd), which is
        # what actually bounds snd_nxt (RFC 793): using the latest rwnd
        # against a newer snd_una would overshoot a slow receiver.
        self._window_edge = 1 << 30
        self.fin_sent = False
        self._send_signal = Signal(self.sim, "tcp.send")
        self._space_signal = Signal(self.sim, "tcp.space")
        self._ack_progress_at = 0

        # Receiver state.
        self.rcv_nxt = 0
        self.recv_available = 0       # in-order bytes the app has not read
        # Out-of-order reassembly queue: sorted, disjoint (start, end)
        # byte intervals above rcv_nxt, advertised as SACK blocks.
        self._ooo: list[tuple[int, int]] = []
        self.ooo_bytes = 0
        self.peer_fin = False
        self._active_close = False
        self._recv_signal = Signal(self.sim, "tcp.recv")
        self._fin_signal = Signal(self.sim, "tcp.fin")

        # RTT estimation.
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self._rtt_probe: Optional[tuple[int, int]] = None  # (seq_end, sent_at)

        # Reno congestion machinery (RFC 5681/6582).  Three duplicate
        # ACKs trigger a fast retransmit of the hole at snd_una and move
        # the sender to FAST_RECOVERY; the NewReno recovery point
        # (_recover) guards against the retransmitted burst re-triggering
        # itself and marks where recovery completes.
        self.cc_state = CongestionState.SLOW_START
        self._dup_acks = 0
        self._last_ack_seen = 0
        self._recover = 0
        self._backoff = 0
        # SACK scoreboard: sorted, disjoint (start, end) intervals the
        # peer has acknowledged above snd_una.  Hole retransmissions stop
        # at the first SACKed byte; cleared on RTO (RFC 2018 pessimism).
        self._sacked: list[tuple[int, int]] = []

        # Statistics.
        self.retransmits = 0
        self.fast_retransmits = 0
        self.fast_recoveries = 0
        self.segments_sent = 0
        self.segments_received = 0
        self.bytes_acked = 0
        self.bytes_delivered = 0
        self.rtt_samples = 0
        self.sacks_received = 0

        # cwnd/ssthresh/state gauges (non-kernel connections only; see
        # _publish_cc).  Created lazily at establishment.
        self._cc_gauges = None

        self.established_event: Event = self.sim.event()
        self._sender_proc = None
        self._retx_proc = None

        # Hybrid fluid/packet simulation (repro.sim.fluid).  ``fluid`` is
        # the FluidFlow while this connection is captured; ``_fluid_watch``
        # is the region's steady-state probe, set by Stack.register_tcp
        # when fluid mode is on.  Both stay None otherwise, costing one
        # attribute test per ACK.
        self.fluid = None
        self._fluid_watch = None

        # Message-framing bookkeeping (see TcpMessageChannel).
        self.peer: Optional["TcpConnection"] = None
        # deque: recv_message pops from the left on every framed
        # message, which is O(n) on a list for deep backlogs.
        self._in_msgs: deque[tuple[int, object]] = deque()

    # -- lifecycle -----------------------------------------------------------
    def _start(self) -> None:
        """Begin sender + retransmit machinery (after handshake)."""
        self.state = TcpState.ESTABLISHED
        if not self.established_event.triggered:
            self.established_event.succeed(self)
        if not self.in_kernel and self._cc_gauges is None:
            # Guest/application connections publish their congestion
            # trajectory; in-kernel bridge links stay gauge-free (they are
            # numerous and their windows never leave slow start).
            m = self.stack.obs.metrics
            base = f"tcp.cc.{self.stack.name}.{self.local_port}-{self.remote_port}"
            self._cc_gauges = (
                m.gauge(base + ".cwnd"),
                m.gauge(base + ".ssthresh"),
                m.gauge(base + ".state"),
            )
            self._publish_cc()
        if self._sender_proc is None:
            self._sender_proc = self.sim.process(self._sender_loop(), name="tcp.sender")
            self._retx_proc = self.sim.process(self._retx_loop(), name="tcp.retx")

    def _publish_cc(self) -> None:
        """Refresh the timestamped cwnd/ssthresh/state gauges."""
        g = self._cc_gauges
        if g is None:
            return
        now = self.sim.now
        g[0].set(float(self.cwnd), now_ns=now)
        g[1].set(float(self.ssthresh), now_ns=now)
        g[2].set(float(CC_STATE_CODE[self.cc_state]), now_ns=now)

    @property
    def rto_ns(self) -> int:
        if self.srtt is None:
            base = self.MIN_RTO_NS
        else:
            # RFC 6298 with a variance floor: the timeout must clear the
            # smoothed RTT by a healthy margin or steady paths see
            # spurious go-back-N storms.
            base = max(
                self.MIN_RTO_NS,
                int(self.srtt + max(4 * self.rttvar, self.srtt / 2)),
            )
        # Exponential backoff while retransmissions go unacknowledged.
        return base << min(self._backoff, 6)

    @property
    def inflight(self) -> int:
        return self.snd_nxt - self.snd_una

    @property
    def send_space(self) -> int:
        return self.sndbuf - (self.app_written - self.snd_una)

    @property
    def my_rwnd(self) -> int:
        return max(0, self.rcvbuf - self.recv_available - self.ooo_bytes)

    # -- application API -------------------------------------------------------
    def send(self, nbytes: int):
        """Generator: hand ``nbytes`` to the socket, blocking on buffer space."""
        if nbytes < 0:
            raise ValueError("negative send size")
        params = self.stack.params
        if not self.in_kernel:
            yield self.sim.timeout(params.syscall_ns)
        remaining = nbytes
        while remaining > 0:
            space = self.send_space
            if space <= 0:
                yield self._space_signal.wait()
                continue
            chunk = min(space, remaining)
            self.app_written += chunk
            remaining -= chunk
            self._send_signal.fire()

    def recv(self, nbytes: int):
        """Generator: block until ``nbytes`` arrive (or EOF); returns count."""
        params = self.stack.params
        got = 0
        while got < nbytes:
            if self.recv_available > 0:
                chunk = min(self.recv_available, nbytes - got)
                self.recv_available -= chunk
                got += chunk
                continue
            if self.peer_fin:
                break
            yield self._recv_signal.wait()
            yield self.sim.timeout(params.sched_wakeup_ns)
        if not self.in_kernel:
            yield self.sim.timeout(params.syscall_ns)
        return got

    def drain(self):
        """Generator: keep reading until EOF; returns total bytes read."""
        total = 0
        while True:
            got = yield from self.recv(1 << 30)
            total += got
            if self.peer_fin and self.recv_available == 0:
                return total

    def close(self):
        """Generator: flush all data, then FIN (retried until the peer FINs back)."""
        while self.snd_una < self.app_written:
            yield self._space_signal.wait()
        self._active_close = True
        self.fin_sent = True
        self.state = TcpState.FIN_WAIT
        for _attempt in range(16):
            yield from self._emit(fin=True)
            if self.peer_fin:
                return
            timer = self.sim.timeout(2 * self.rto_ns)
            yield self.sim.any_of([timer, self._fin_signal.wait()])
            if self.peer_fin:
                return

    # -- sender machinery --------------------------------------------------------
    def _send_limit(self) -> int:
        """Highest sequence the congestion and flow windows permit."""
        return min(self.snd_una + self.cwnd, self._window_edge)

    def _sender_loop(self):
        while True:
            fl = self.fluid
            if fl is not None:
                # Captured by the fluid region: the region moves bytes in
                # strides; park until it hands the flow back.  (Capture
                # happens inside on_segment *after* _send_signal.fire(),
                # so a sender blocked below always wakes to re-check.)
                yield fl.parked(self)
                continue
            sent_any = False
            while self.snd_nxt < min(self.app_written, self._send_limit()):
                chunk = min(
                    self.mss,
                    self.app_written - self.snd_nxt,
                    self._send_limit() - self.snd_nxt,
                )
                if chunk <= 0:
                    break
                yield from self._emit(payload_bytes=chunk, seq=self.snd_nxt)
                self.snd_nxt += chunk
                sent_any = True
                if self._rtt_probe is None:
                    self._rtt_probe = (self.snd_nxt, self.sim.now)
            if not sent_any:
                yield self._send_signal.wait()

    def _emit(self, payload_bytes: int = 0, seq: Optional[int] = None, **flags):
        """Generator: build and transmit one segment (with stack costs)."""
        params = self.stack.params
        seg = TcpSegment(
            sport=self.local_port,
            dport=self.remote_port,
            seq=self.snd_nxt if seq is None else seq,
            ack=self.rcv_nxt,
            payload_bytes=payload_bytes,
            rwnd=self.my_rwnd,
            sack=tuple(self._ooo[:3]),
            conn_ref=self if flags.get("syn") else None,
            **flags,
        )
        cost = params.tcp_tx_ns if payload_bytes else params.tcp_ack_tx_ns
        yield self.sim.timeout(cost + params.checksum_ns(payload_bytes))
        self.segments_sent += 1
        yield from self.stack.ip_send(self.remote_ip, PROTO_TCP, seg)

    def _retx_loop(self):
        while True:
            fl = self.fluid
            if fl is not None and self.inflight == 0:
                # Fluid-active (drained): nothing to time out; park.  While
                # still draining (inflight > 0) the timer stays armed.
                yield fl.parked(self)
                continue
            if self.inflight == 0 and self.snd_nxt >= self.app_written:
                # Truly idle (nothing outstanding or pending): block on the
                # send signal so the simulation can drain.  When data is
                # pending but momentarily not in flight (immediately after
                # a go-back-N reset), keep the timer armed instead.
                yield self._send_signal.wait()
                continue
            yield self.sim.timeout(self.rto_ns)
            if self.inflight == 0:
                if (
                    self.snd_nxt < self.app_written
                    and self.snd_nxt >= self._window_edge
                ):
                    # Zero-window persist probe: one byte past the edge
                    # elicits an ACK carrying the receiver's current window.
                    yield from self._emit(payload_bytes=1, seq=self.snd_nxt)
                    self.snd_nxt += 1
                continue
            if self.sim.now - self._ack_progress_at < self.rto_ns:
                continue
            # Timeout: go-back-N from snd_una with multiplicative decrease
            # and a fresh slow start (RFC 5681 §3.1).
            if self.fluid is not None:
                # Loss during the fluid drain phase: the flow was not
                # steady after all — hand it straight back to packets.
                self.fluid.cancel(self)
            self._backoff += 1
            self.retransmits += 1
            self.ssthresh = max(self.inflight // 2, 2 * self.mss)
            self.cwnd = self.mss
            self.cc_state = CongestionState.SLOW_START
            # NewReno: the whole outstanding window is suspect, so dup
            # ACKs below this point must not re-trigger fast retransmit,
            # and the SACK scoreboard is no longer trusted (RFC 2018 §8).
            self._recover = self.snd_nxt
            self._sacked.clear()
            self._dup_acks = 0
            self.snd_nxt = self.snd_una
            self._rtt_probe = None  # Karn: never sample retransmitted data
            self._ack_progress_at = self.sim.now
            self._publish_cc()
            self._send_signal.fire()

    # -- segment arrival (called by the stack's softirq, costs already charged) --
    def on_segment(self, seg: TcpSegment, src_ip: str) -> None:
        self.segments_received += 1
        if seg.syn and not seg.is_ack:
            if self.state in (TcpState.SYN_RECEIVED, TcpState.ESTABLISHED):
                # Registered connections shadow the listener in the demux,
                # so a retransmitted handshake SYN lands here rather than
                # on TcpListener._on_syn (the passive side moves straight
                # to ESTABLISHED when its SYN/ACK goes out): the peer never
                # saw our SYN/ACK — resend it.
                self.sim.process(self._emit(syn=True), name="tcp.synack-rtx")
            return
        if seg.syn and seg.is_ack and self.state == TcpState.SYN_SENT:
            # SYN/ACK completes the active open (and announces the peer's
            # initial receive window).
            if seg.conn_ref is not None:
                self.peer = seg.conn_ref
            self.peer_rwnd = seg.rwnd
            self._window_edge = seg.ack + seg.rwnd
            self._start()
            self.sim.process(self._emit(), name="tcp.hsack")
            return
        # SACK scoreboard update (before any retransmission decision).
        if seg.sack:
            self._note_sack(seg.sack)
        # ACK processing.
        if seg.ack > self.snd_una:
            acked = seg.ack - self.snd_una
            self.bytes_acked += acked
            self.snd_una = seg.ack
            self._ack_progress_at = self.sim.now
            self._backoff = 0
            self._last_ack_seen = seg.ack
            if self._sacked and self._sacked[0][0] < self.snd_una:
                self._sacked = [
                    (max(s, self.snd_una), e)
                    for s, e in self._sacked
                    if e > self.snd_una
                ]
            if self._rtt_probe is not None and seg.ack >= self._rtt_probe[0]:
                self._update_rtt(self.sim.now - self._rtt_probe[1])
                self._rtt_probe = None
            if self.cc_state is CongestionState.FAST_RECOVERY:
                if seg.ack >= self._recover:
                    # Full recovery: deflate to ssthresh and resume
                    # congestion avoidance (RFC 6582 §3.2 step 3).
                    self.cwnd = self.ssthresh
                    self.cc_state = CongestionState.CONGESTION_AVOIDANCE
                    self._dup_acks = 0
                else:
                    # NewReno partial ACK: the next hole was lost too.
                    # Retransmit it immediately, deflating by the amount
                    # acknowledged (plus one MSS back in).
                    self.cwnd = max(self.cwnd - acked + self.mss, self.mss)
                    self._retransmit_hole()
            else:
                self._dup_acks = 0
                # Congestion window growth.
                if self.cwnd < self.ssthresh:
                    self.cwnd += min(acked, self.mss)
                else:
                    if self.cc_state is CongestionState.SLOW_START:
                        self.cc_state = CongestionState.CONGESTION_AVOIDANCE
                    self.cwnd += max(1, self.mss * self.mss // self.cwnd)
            self._publish_cc()
            self._space_signal.fire()
            self._send_signal.fire()
            # Hybrid fluid/packet hooks: while captured, each ACK drains
            # in-flight data toward activation; otherwise the region's
            # steady-state probe samples the ACK rate.
            fl = self.fluid
            if fl is not None:
                fl.on_ack_progress(self)
            elif self._fluid_watch is not None:
                self._fluid_watch(self)
        elif (
            seg.ack == self.snd_una
            and self.inflight > 0
            and seg.payload_bytes == 0
            and not seg.syn
            and not seg.fin
        ):
            # Duplicate ACK: the receiver is seeing out-of-order data.
            self._dup_acks += 1
            if self.cc_state is CongestionState.FAST_RECOVERY:
                # Window inflation: each dup ACK means one more segment
                # left the network (RFC 5681 §3.2 step 4).
                self.cwnd += self.mss
                self._publish_cc()
                self._send_signal.fire()
            elif self._dup_acks == 3 and seg.ack >= self._recover:
                self._enter_fast_recovery()
        self.peer_rwnd = seg.rwnd
        edge = seg.ack + seg.rwnd
        if edge > self._window_edge or seg.ack >= self.snd_una:
            # Window updates may shrink the edge only via newer acks.
            if edge != self._window_edge:
                self._window_edge = edge
                self._send_signal.fire()
        # Data processing: in-order data advances rcv_nxt (merging any
        # buffered out-of-order intervals it meets); out-of-order data is
        # buffered for SACK; stale duplicates just elicit an ACK.
        if seg.payload_bytes > 0:
            start = seg.seq
            end = start + seg.payload_bytes
            if start <= self.rcv_nxt < end:
                prev = self.rcv_nxt
                self.rcv_nxt = end
                while self._ooo and self._ooo[0][0] <= self.rcv_nxt:
                    s, e = self._ooo.pop(0)
                    self.ooo_bytes -= e - s
                    if e > self.rcv_nxt:
                        self.rcv_nxt = e
                delivered = self.rcv_nxt - prev
                self.recv_available += delivered
                self.bytes_delivered += delivered
                self._recv_signal.fire()
            elif start > self.rcv_nxt:
                self._buffer_ooo(start, end)
            # Always ack (duplicate acks, carrying SACK blocks, for ooo
            # segments).
            self.sim.process(self._emit(), name="tcp.ack")
        if seg.fin:
            self.peer_fin = True
            self.state = TcpState.CLOSE_WAIT
            self._recv_signal.fire()
            self._fin_signal.fire()
            if not self._active_close:
                # Passive close: answer every FIN with our own FIN so the
                # active side converges even when frames are dropped.
                self.fin_sent = True
                self.sim.process(self._emit(fin=True), name="tcp.finack")

    def _enter_fast_recovery(self) -> None:
        """Third duplicate ACK: retransmit the hole, halve the window."""
        if self.fluid is not None:
            # Loss surfaced while the fluid capture was draining: abort
            # the capture, recover at packet level.
            self.fluid.cancel(self)
        self._recover = self.snd_nxt
        self.fast_retransmits += 1
        self.fast_recoveries += 1
        self.ssthresh = max(self.inflight // 2, 2 * self.mss)
        self.cwnd = self.ssthresh + 3 * self.mss
        self.cc_state = CongestionState.FAST_RECOVERY
        self._ack_progress_at = self.sim.now
        self._publish_cc()
        self._retransmit_hole()
        self._send_signal.fire()

    def _retransmit_hole(self) -> None:
        """Retransmit one MSS at ``snd_una``, stopping at SACKed data."""
        start = self.snd_una
        end = self._recover if self._recover > start else self.snd_nxt
        for s, _e in self._sacked:
            if s > start:
                end = min(end, s)
                break
        chunk = min(self.mss, end - start)
        if chunk <= 0:
            return
        self.retransmits += 1
        self._rtt_probe = None  # Karn: never sample a retransmitted range
        self.sim.process(
            self._emit(payload_bytes=chunk, seq=start), name="tcp.fast-rtx"
        )

    def _note_sack(self, blocks: tuple) -> None:
        """Merge the peer's SACK blocks into the sender scoreboard."""
        self.sacks_received += 1
        intervals = self._sacked + [
            (s, e) for s, e in blocks if e > self.snd_una
        ]
        intervals.sort()
        merged: list[tuple[int, int]] = []
        for s, e in intervals:
            if merged and s <= merged[-1][1]:
                if e > merged[-1][1]:
                    merged[-1] = (merged[-1][0], e)
            else:
                merged.append((s, e))
        self._sacked = merged

    def _buffer_ooo(self, start: int, end: int) -> None:
        """Buffer an out-of-order byte range, coalescing overlaps."""
        intervals = self._ooo + [(start, end)]
        intervals.sort()
        merged: list[tuple[int, int]] = []
        for s, e in intervals:
            if merged and s <= merged[-1][1]:
                if e > merged[-1][1]:
                    merged[-1] = (merged[-1][0], e)
            else:
                merged.append((s, e))
        self._ooo = merged
        self.ooo_bytes = sum(e - s for s, e in merged)

    def _update_rtt(self, sample_ns: int) -> None:
        self.rtt_samples += 1
        if self.srtt is None:
            self.srtt = float(sample_ns)
            self.rttvar = sample_ns / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample_ns)
            self.srtt = 0.875 * self.srtt + 0.125 * sample_ns


class TcpListener:
    """Passive open: queue of handshake-completed connections."""

    def __init__(
        self,
        stack: "Stack",
        port: int,
        in_kernel: bool = False,
        sndbuf: int = 256 * 1024,
        rcvbuf: int = 256 * 1024,
    ):
        from ..sim import Store

        self.stack = stack
        self.port = port
        self.in_kernel = in_kernel
        self.sndbuf = sndbuf
        self.rcvbuf = rcvbuf
        self._accept_q = Store(stack.sim, name=f"listen:{port}")

    def accept(self):
        """Generator: wait for the next established connection."""
        conn = yield self._accept_q.get()
        return conn

    def _on_syn(self, seg: TcpSegment, src_ip: str) -> None:
        for c in self.stack._tcp_conns.values():
            if (
                c.local_port == self.port
                and c.remote_ip == src_ip
                and c.remote_port == seg.sport
            ):
                # Retransmitted SYN: our SYN/ACK was lost; resend it.
                self.stack.sim.process(c._emit(syn=True), name="tcp.synack-rtx")
                return
        conn = TcpConnection(
            self.stack,
            local_port=self.port,
            remote_ip=src_ip,
            remote_port=seg.sport,
            sndbuf=self.sndbuf,
            rcvbuf=self.rcvbuf,
            in_kernel=self.in_kernel,
        )
        if seg.conn_ref is not None:
            conn.peer = seg.conn_ref
        self.stack.register_tcp(conn)
        conn.state = TcpState.SYN_RECEIVED
        self.stack.sim.process(self._synack(conn), name="tcp.synack")

    def _synack(self, conn: TcpConnection):
        yield from conn._emit(syn=True)
        conn._start()
        yield self._accept_q.put(conn)


class TcpMessageChannel:
    """Message framing over a TCP byte stream.

    Real implementations prefix each message with a length header; the
    simulation equivalent rides the message *object* alongside the byte
    counts: the sender records (stream offset at message end, object) on
    the receiving endpoint before the bytes flow, and the receiver
    surfaces the object once that many bytes have been delivered in
    order.  Both the VNET/P bridge's TCP-encapsulated links and the MPI
    transport use this.
    """

    def __init__(self, conn: TcpConnection):
        self.conn = conn
        self._consumed = 0
        self._announced = 0  # local bytes announced to the peer

    def send_message(self, obj: object, nbytes: int):
        """Generator: frame ``obj`` as ``nbytes`` of stream data and send."""
        if nbytes <= 0:
            raise ValueError(f"message size must be positive, got {nbytes}")
        if self.conn.peer is None:
            raise RuntimeError("TcpMessageChannel requires a paired connection")
        self._announced += nbytes
        self.conn.peer._in_msgs.append((self._announced, obj))
        yield from self.conn.send(nbytes)

    def recv_message(self):
        """Generator: block until the next whole message has arrived."""
        conn = self.conn
        while not conn._in_msgs:
            if conn.peer_fin:
                raise EOFError("connection closed before next message")
            yield conn._recv_signal.wait()
        end, obj = conn._in_msgs[0]
        while self._consumed < end:
            got = yield from conn.recv(end - self._consumed)
            if got == 0:
                raise EOFError("connection closed mid-message")
            self._consumed += got
        conn._in_msgs.popleft()
        return obj
