"""Simplified TCP: connection setup, sliding window, congestion control.

Implements what the paper's workloads exercise: bulk transfer with
socket-buffer-limited windows (ttcp -t with 256 KB buffers), slow start,
AIMD congestion avoidance, go-back-N retransmission on timeout, and
flow control from the receive buffer.  SACK, fast retransmit, Nagle and
delayed ACK are deliberately omitted; the simulated links are lossless
unless a test injects drops, so loss recovery is exercised by fault-
injection tests rather than by the benchmarks.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..sim import Event, Signal, Simulator
from .base import next_pdu_id
from .ip import PROTO_TCP

if TYPE_CHECKING:  # pragma: no cover
    from .stack import Stack

__all__ = ["TCP_HEADER", "TcpSegment", "TcpConnection", "TcpListener", "TcpState"]

TCP_HEADER = 20


@dataclass(slots=True)
class TcpSegment:
    """One TCP segment; ``size`` covers the TCP header + payload bytes."""

    sport: int
    dport: int
    seq: int
    ack: int
    payload_bytes: int = 0
    syn: bool = False
    fin: bool = False
    is_ack: bool = True
    rwnd: int = 1 << 30
    # Simulation bookkeeping: SYN/SYNACK segments carry a reference to the
    # sending endpoint so the two TcpConnection objects can pair up (used
    # for message framing; see TcpMessageChannel).
    conn_ref: Optional["TcpConnection"] = None
    id: int = field(default_factory=next_pdu_id)

    @property
    def size(self) -> int:
        return TCP_HEADER + self.payload_bytes


class TcpState(enum.Enum):
    CLOSED = "closed"
    SYN_SENT = "syn-sent"
    SYN_RECEIVED = "syn-received"
    ESTABLISHED = "established"
    FIN_WAIT = "fin-wait"
    CLOSE_WAIT = "close-wait"


class TcpConnection:
    """One endpoint of a TCP connection over a simulated stack."""

    # RTO floor: Linux uses 200 ms; we scale it down for simulation
    # turnaround but keep it well above any queue-inflated LAN RTT so
    # timeouts are real losses, not bufferbloat (fast retransmit handles
    # the common single-loss case without waiting for this).
    MIN_RTO_NS = 10_000_000       # 10 ms
    INITIAL_CWND_SEGMENTS = 10

    def __init__(
        self,
        stack: "Stack",
        local_port: int,
        remote_ip: str,
        remote_port: int,
        sndbuf: int = 256 * 1024,
        rcvbuf: int = 256 * 1024,
        in_kernel: bool = False,
    ):
        self.stack = stack
        self.sim: Simulator = stack.sim
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.sndbuf = sndbuf
        self.rcvbuf = rcvbuf
        self.in_kernel = in_kernel
        self.state = TcpState.CLOSED

        dev, _ = stack.route(remote_ip)
        self.mss = dev.mtu - TCP_HEADER - 20  # IP header

        # Sender state (byte sequence space).
        self.snd_una = 0              # oldest unacknowledged
        self.snd_nxt = 0              # next to send
        self.app_written = 0          # bytes the app has handed to the socket
        self.cwnd = self.INITIAL_CWND_SEGMENTS * self.mss
        self.ssthresh = 1 << 30
        self.peer_rwnd = 1 << 30
        # Right edge of the peer's advertised window (ack + rwnd), which is
        # what actually bounds snd_nxt (RFC 793): using the latest rwnd
        # against a newer snd_una would overshoot a slow receiver.
        self._window_edge = 1 << 30
        self.fin_sent = False
        self._send_signal = Signal(self.sim, "tcp.send")
        self._space_signal = Signal(self.sim, "tcp.space")
        self._ack_progress_at = 0

        # Receiver state.
        self.rcv_nxt = 0
        self.recv_available = 0       # in-order bytes the app has not read
        self.peer_fin = False
        self._active_close = False
        self._recv_signal = Signal(self.sim, "tcp.recv")
        self._fin_signal = Signal(self.sim, "tcp.fin")

        # RTT estimation.
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self._rtt_probe: Optional[tuple[int, int]] = None  # (seq_end, sent_at)

        # Fast retransmit (RFC 5681): 3 duplicate ACKs trigger an
        # immediate go-back-N without waiting for the RTO.  NewReno-style
        # recovery point: dup-ACKs are ignored until the ACKs pass the
        # highest sequence sent before the loss, else the retransmitted
        # burst re-triggers itself.
        self._dup_acks = 0
        self._last_ack_seen = 0
        self._recover = 0
        self._backoff = 0

        # Statistics.
        self.retransmits = 0
        self.fast_retransmits = 0
        self.segments_sent = 0
        self.segments_received = 0
        self.bytes_acked = 0
        self.bytes_delivered = 0

        self.established_event: Event = self.sim.event()
        self._sender_proc = None
        self._retx_proc = None

        # Hybrid fluid/packet simulation (repro.sim.fluid).  ``fluid`` is
        # the FluidFlow while this connection is captured; ``_fluid_watch``
        # is the region's steady-state probe, set by Stack.register_tcp
        # when fluid mode is on.  Both stay None otherwise, costing one
        # attribute test per ACK.
        self.fluid = None
        self._fluid_watch = None

        # Message-framing bookkeeping (see TcpMessageChannel).
        self.peer: Optional["TcpConnection"] = None
        # deque: recv_message pops from the left on every framed
        # message, which is O(n) on a list for deep backlogs.
        self._in_msgs: deque[tuple[int, object]] = deque()

    # -- lifecycle -----------------------------------------------------------
    def _start(self) -> None:
        """Begin sender + retransmit machinery (after handshake)."""
        self.state = TcpState.ESTABLISHED
        if not self.established_event.triggered:
            self.established_event.succeed(self)
        if self._sender_proc is None:
            self._sender_proc = self.sim.process(self._sender_loop(), name="tcp.sender")
            self._retx_proc = self.sim.process(self._retx_loop(), name="tcp.retx")

    @property
    def rto_ns(self) -> int:
        if self.srtt is None:
            base = self.MIN_RTO_NS
        else:
            # RFC 6298 with a variance floor: the timeout must clear the
            # smoothed RTT by a healthy margin or steady paths see
            # spurious go-back-N storms.
            base = max(
                self.MIN_RTO_NS,
                int(self.srtt + max(4 * self.rttvar, self.srtt / 2)),
            )
        # Exponential backoff while retransmissions go unacknowledged.
        return base << min(self._backoff, 6)

    @property
    def inflight(self) -> int:
        return self.snd_nxt - self.snd_una

    @property
    def send_space(self) -> int:
        return self.sndbuf - (self.app_written - self.snd_una)

    @property
    def my_rwnd(self) -> int:
        return max(0, self.rcvbuf - self.recv_available)

    # -- application API -------------------------------------------------------
    def send(self, nbytes: int):
        """Generator: hand ``nbytes`` to the socket, blocking on buffer space."""
        if nbytes < 0:
            raise ValueError("negative send size")
        params = self.stack.params
        if not self.in_kernel:
            yield self.sim.timeout(params.syscall_ns)
        remaining = nbytes
        while remaining > 0:
            space = self.send_space
            if space <= 0:
                yield self._space_signal.wait()
                continue
            chunk = min(space, remaining)
            self.app_written += chunk
            remaining -= chunk
            self._send_signal.fire()

    def recv(self, nbytes: int):
        """Generator: block until ``nbytes`` arrive (or EOF); returns count."""
        params = self.stack.params
        got = 0
        while got < nbytes:
            if self.recv_available > 0:
                chunk = min(self.recv_available, nbytes - got)
                self.recv_available -= chunk
                got += chunk
                continue
            if self.peer_fin:
                break
            yield self._recv_signal.wait()
            yield self.sim.timeout(params.sched_wakeup_ns)
        if not self.in_kernel:
            yield self.sim.timeout(params.syscall_ns)
        return got

    def drain(self):
        """Generator: keep reading until EOF; returns total bytes read."""
        total = 0
        while True:
            got = yield from self.recv(1 << 30)
            total += got
            if self.peer_fin and self.recv_available == 0:
                return total

    def close(self):
        """Generator: flush all data, then FIN (retried until the peer FINs back)."""
        while self.snd_una < self.app_written:
            yield self._space_signal.wait()
        self._active_close = True
        self.fin_sent = True
        self.state = TcpState.FIN_WAIT
        for _attempt in range(16):
            yield from self._emit(fin=True)
            if self.peer_fin:
                return
            timer = self.sim.timeout(2 * self.rto_ns)
            yield self.sim.any_of([timer, self._fin_signal.wait()])
            if self.peer_fin:
                return

    # -- sender machinery --------------------------------------------------------
    def _send_limit(self) -> int:
        """Highest sequence the congestion and flow windows permit."""
        return min(self.snd_una + self.cwnd, self._window_edge)

    def _sender_loop(self):
        while True:
            fl = self.fluid
            if fl is not None:
                # Captured by the fluid region: the region moves bytes in
                # strides; park until it hands the flow back.  (Capture
                # happens inside on_segment *after* _send_signal.fire(),
                # so a sender blocked below always wakes to re-check.)
                yield fl.parked(self)
                continue
            sent_any = False
            while self.snd_nxt < min(self.app_written, self._send_limit()):
                chunk = min(
                    self.mss,
                    self.app_written - self.snd_nxt,
                    self._send_limit() - self.snd_nxt,
                )
                if chunk <= 0:
                    break
                yield from self._emit(payload_bytes=chunk, seq=self.snd_nxt)
                self.snd_nxt += chunk
                sent_any = True
                if self._rtt_probe is None:
                    self._rtt_probe = (self.snd_nxt, self.sim.now)
            if not sent_any:
                yield self._send_signal.wait()

    def _emit(self, payload_bytes: int = 0, seq: Optional[int] = None, **flags):
        """Generator: build and transmit one segment (with stack costs)."""
        params = self.stack.params
        seg = TcpSegment(
            sport=self.local_port,
            dport=self.remote_port,
            seq=self.snd_nxt if seq is None else seq,
            ack=self.rcv_nxt,
            payload_bytes=payload_bytes,
            rwnd=self.my_rwnd,
            conn_ref=self if flags.get("syn") else None,
            **flags,
        )
        cost = params.tcp_tx_ns if payload_bytes else params.tcp_ack_tx_ns
        yield self.sim.timeout(cost + params.checksum_ns(payload_bytes))
        self.segments_sent += 1
        yield from self.stack.ip_send(self.remote_ip, PROTO_TCP, seg)

    def _retx_loop(self):
        while True:
            fl = self.fluid
            if fl is not None and self.inflight == 0:
                # Fluid-active (drained): nothing to time out; park.  While
                # still draining (inflight > 0) the timer stays armed.
                yield fl.parked(self)
                continue
            if self.inflight == 0 and self.snd_nxt >= self.app_written:
                # Truly idle (nothing outstanding or pending): block on the
                # send signal so the simulation can drain.  When data is
                # pending but momentarily not in flight (immediately after
                # a go-back-N reset), keep the timer armed instead.
                yield self._send_signal.wait()
                continue
            yield self.sim.timeout(self.rto_ns)
            if self.inflight == 0:
                if (
                    self.snd_nxt < self.app_written
                    and self.snd_nxt >= self._window_edge
                ):
                    # Zero-window persist probe: one byte past the edge
                    # elicits an ACK carrying the receiver's current window.
                    yield from self._emit(payload_bytes=1, seq=self.snd_nxt)
                    self.snd_nxt += 1
                continue
            if self.sim.now - self._ack_progress_at < self.rto_ns:
                continue
            # Timeout: go-back-N from snd_una with multiplicative decrease.
            if self.fluid is not None:
                # Loss during the fluid drain phase: the flow was not
                # steady after all — hand it straight back to packets.
                self.fluid.cancel(self)
            self._backoff += 1
            self.retransmits += 1
            self.ssthresh = max(self.inflight // 2, 2 * self.mss)
            self.cwnd = self.mss
            self.snd_nxt = self.snd_una
            self._rtt_probe = None
            self._ack_progress_at = self.sim.now
            self._send_signal.fire()

    # -- segment arrival (called by the stack's softirq, costs already charged) --
    def on_segment(self, seg: TcpSegment, src_ip: str) -> None:
        self.segments_received += 1
        if seg.syn and not seg.is_ack:
            if self.state in (TcpState.SYN_RECEIVED, TcpState.ESTABLISHED):
                # Registered connections shadow the listener in the demux,
                # so a retransmitted handshake SYN lands here rather than
                # on TcpListener._on_syn (the passive side moves straight
                # to ESTABLISHED when its SYN/ACK goes out): the peer never
                # saw our SYN/ACK — resend it.
                self.sim.process(self._emit(syn=True), name="tcp.synack-rtx")
            return
        if seg.syn and seg.is_ack and self.state == TcpState.SYN_SENT:
            # SYN/ACK completes the active open (and announces the peer's
            # initial receive window).
            if seg.conn_ref is not None:
                self.peer = seg.conn_ref
            self.peer_rwnd = seg.rwnd
            self._window_edge = seg.ack + seg.rwnd
            self._start()
            self.sim.process(self._emit(), name="tcp.hsack")
            return
        # ACK processing.
        if seg.ack > self.snd_una:
            acked = seg.ack - self.snd_una
            self.bytes_acked += acked
            self.snd_una = seg.ack
            self._ack_progress_at = self.sim.now
            self._dup_acks = 0
            self._backoff = 0
            self._last_ack_seen = seg.ack
            if self._rtt_probe is not None and seg.ack >= self._rtt_probe[0]:
                self._update_rtt(self.sim.now - self._rtt_probe[1])
                self._rtt_probe = None
            # Congestion window growth.
            if self.cwnd < self.ssthresh:
                self.cwnd += min(acked, self.mss)
            else:
                self.cwnd += max(1, self.mss * self.mss // self.cwnd)
            self._space_signal.fire()
            self._send_signal.fire()
            # Hybrid fluid/packet hooks: while captured, each ACK drains
            # in-flight data toward activation; otherwise the region's
            # steady-state probe samples the ACK rate.
            fl = self.fluid
            if fl is not None:
                fl.on_ack_progress(self)
            elif self._fluid_watch is not None:
                self._fluid_watch(self)
        elif (
            seg.ack == self.snd_una
            and self.inflight > 0
            and seg.payload_bytes == 0
            and not seg.syn
            and not seg.fin
        ):
            # Duplicate ACK: the receiver is seeing out-of-order data.
            self._dup_acks += 1
            if self._dup_acks == 3 and seg.ack >= self._recover:
                if self.fluid is not None:
                    # Loss surfaced while the fluid capture was draining:
                    # abort the capture, recover at packet level.
                    self.fluid.cancel(self)
                self._recover = self.snd_nxt
                self.fast_retransmits += 1
                self.retransmits += 1
                self.ssthresh = max(self.inflight // 2, 2 * self.mss)
                self.cwnd = self.ssthresh
                self.snd_nxt = self.snd_una
                self._rtt_probe = None
                self._ack_progress_at = self.sim.now
                self._dup_acks = 0
                self._send_signal.fire()
        self.peer_rwnd = seg.rwnd
        edge = seg.ack + seg.rwnd
        if edge > self._window_edge or seg.ack >= self.snd_una:
            # Window updates may shrink the edge only via newer acks.
            if edge != self._window_edge:
                self._window_edge = edge
                self._send_signal.fire()
        # Data processing (in-order only; out-of-order dropped => go-back-N).
        if seg.payload_bytes > 0:
            if seg.seq == self.rcv_nxt:
                self.rcv_nxt += seg.payload_bytes
                self.recv_available += seg.payload_bytes
                self.bytes_delivered += seg.payload_bytes
                self._recv_signal.fire()
            # Always ack (duplicate acks for ooo segments).
            self.sim.process(self._emit(), name="tcp.ack")
        if seg.fin:
            self.peer_fin = True
            self.state = TcpState.CLOSE_WAIT
            self._recv_signal.fire()
            self._fin_signal.fire()
            if not self._active_close:
                # Passive close: answer every FIN with our own FIN so the
                # active side converges even when frames are dropped.
                self.fin_sent = True
                self.sim.process(self._emit(fin=True), name="tcp.finack")

    def _update_rtt(self, sample_ns: int) -> None:
        if self.srtt is None:
            self.srtt = float(sample_ns)
            self.rttvar = sample_ns / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample_ns)
            self.srtt = 0.875 * self.srtt + 0.125 * sample_ns


class TcpListener:
    """Passive open: queue of handshake-completed connections."""

    def __init__(
        self,
        stack: "Stack",
        port: int,
        in_kernel: bool = False,
        sndbuf: int = 256 * 1024,
        rcvbuf: int = 256 * 1024,
    ):
        from ..sim import Store

        self.stack = stack
        self.port = port
        self.in_kernel = in_kernel
        self.sndbuf = sndbuf
        self.rcvbuf = rcvbuf
        self._accept_q = Store(stack.sim, name=f"listen:{port}")

    def accept(self):
        """Generator: wait for the next established connection."""
        conn = yield self._accept_q.get()
        return conn

    def _on_syn(self, seg: TcpSegment, src_ip: str) -> None:
        for c in self.stack._tcp_conns.values():
            if (
                c.local_port == self.port
                and c.remote_ip == src_ip
                and c.remote_port == seg.sport
            ):
                # Retransmitted SYN: our SYN/ACK was lost; resend it.
                self.stack.sim.process(c._emit(syn=True), name="tcp.synack-rtx")
                return
        conn = TcpConnection(
            self.stack,
            local_port=self.port,
            remote_ip=src_ip,
            remote_port=seg.sport,
            sndbuf=self.sndbuf,
            rcvbuf=self.rcvbuf,
            in_kernel=self.in_kernel,
        )
        if seg.conn_ref is not None:
            conn.peer = seg.conn_ref
        self.stack.register_tcp(conn)
        conn.state = TcpState.SYN_RECEIVED
        self.stack.sim.process(self._synack(conn), name="tcp.synack")

    def _synack(self, conn: TcpConnection):
        yield from conn._emit(syn=True)
        conn._start()
        yield self._accept_q.put(conn)


class TcpMessageChannel:
    """Message framing over a TCP byte stream.

    Real implementations prefix each message with a length header; the
    simulation equivalent rides the message *object* alongside the byte
    counts: the sender records (stream offset at message end, object) on
    the receiving endpoint before the bytes flow, and the receiver
    surfaces the object once that many bytes have been delivered in
    order.  Both the VNET/P bridge's TCP-encapsulated links and the MPI
    transport use this.
    """

    def __init__(self, conn: TcpConnection):
        self.conn = conn
        self._consumed = 0
        self._announced = 0  # local bytes announced to the peer

    def send_message(self, obj: object, nbytes: int):
        """Generator: frame ``obj`` as ``nbytes`` of stream data and send."""
        if nbytes <= 0:
            raise ValueError(f"message size must be positive, got {nbytes}")
        if self.conn.peer is None:
            raise RuntimeError("TcpMessageChannel requires a paired connection")
        self._announced += nbytes
        self.conn.peer._in_msgs.append((self._announced, obj))
        yield from self.conn.send(nbytes)

    def recv_message(self):
        """Generator: block until the next whole message has arrived."""
        conn = self.conn
        while not conn._in_msgs:
            if conn.peer_fin:
                raise EOFError("connection closed before next message")
            yield conn._recv_signal.wait()
        end, obj = conn._in_msgs[0]
        while self._consumed < end:
            got = yield from conn.recv(end - self._consumed)
            if got == 0:
                raise EOFError("connection closed mid-message")
            self._consumed += got
        conn._in_msgs.popleft()
        return obj
