"""Simulated protocol stack: Ethernet, IPv4, UDP, TCP, ICMP, sockets."""

from .base import Blob, next_pdu_id
from .ethernet import BROADCAST_MAC, ETH_HEADER, EthernetFrame, mac_addr
from .icmp import ICMPMessage
from .ip import IPv4Packet, Reassembler, fragment
from .stack import NetDevice, Stack, UdpSocket
from .tcp import TcpConnection, TcpListener, TcpSegment
from .udp import UDPDatagram

__all__ = [
    "Blob",
    "next_pdu_id",
    "BROADCAST_MAC",
    "ETH_HEADER",
    "EthernetFrame",
    "mac_addr",
    "ICMPMessage",
    "IPv4Packet",
    "Reassembler",
    "fragment",
    "NetDevice",
    "Stack",
    "UdpSocket",
    "TcpConnection",
    "TcpListener",
    "TcpSegment",
    "UDPDatagram",
]
