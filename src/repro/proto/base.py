"""Protocol data unit (PDU) conventions.

Simulated packets carry *sizes and metadata*, never real byte buffers:
``size`` is always the total on-wire size of the PDU including its own
header.  A :class:`Blob` stands in for application payload bytes.

Each PDU gets a unique id for tracing and request/reply matching.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["next_pdu_id", "Blob"]

_pdu_ids = itertools.count(1)


def next_pdu_id() -> int:
    """Globally unique (per-interpreter) packet id."""
    return next(_pdu_ids)


@dataclass(slots=True)
class Blob:
    """Opaque application payload of ``size`` bytes with optional metadata."""

    size: int
    meta: Any = None
    id: int = field(default_factory=next_pdu_id)

    def __post_init__(self):
        if self.size < 0:
            raise ValueError(f"negative payload size: {self.size}")
