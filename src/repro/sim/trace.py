"""Lightweight tracing and statistics collection.

The tracer records (time, category, payload) tuples when enabled, and
always maintains cheap counters.  Benchmarks use :class:`SampleStats`
for latency distributions without keeping every sample in Python lists
when very large.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Any, Iterable

__all__ = ["Tracer", "SampleStats"]


class Tracer:
    """Event trace plus counters.

    Tracing full records is off by default (it is O(events) memory); the
    counters are always on and are what most tests assert against.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.records: list[tuple[int, str, Any]] = []
        self.counters: Counter[str] = Counter()

    def count(self, category: str, n: int = 1) -> None:
        self.counters[category] += n

    def record(self, now: int, category: str, payload: Any = None) -> None:
        self.counters[category] += 1
        if self.enabled:
            self.records.append((now, category, payload))

    def of(self, category: str) -> list[tuple[int, str, Any]]:
        return [r for r in self.records if r[1] == category]

    def reset(self) -> None:
        self.records.clear()
        self.counters.clear()


class SampleStats:
    """Streaming mean/variance/min/max plus an optional sample reservoir."""

    def __init__(self, keep_samples: bool = True):
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.samples: list[float] | None = [] if keep_samples else None

    def add(self, x: float) -> None:
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        self.min = min(self.min, x)
        self.max = max(self.max, x)
        if self.samples is not None:
            self.samples.append(x)

    def add_weighted(self, x: float, weight: float) -> None:
        """Add ``x`` carrying ``weight`` observations' worth of mass.

        Weighted West/Welford update: an integral weight ``w`` gives the
        exact moments of calling :meth:`add` ``w`` times with ``x`` (the
        hybrid fluid fast path records one aggregate value per stride,
        weighted by the packets the stride stands for, so means are
        time/packet-weighted rather than per-wakeup point samples).
        Fractional weights interpolate.  The sample reservoir records
        ``(x, weight)`` as round(weight) repeats, capped at 64 per call
        to keep stride aggregation from flooding it.
        """
        if weight <= 0:
            return
        self.n += weight
        delta = x - self._mean
        self._mean += delta * weight / self.n
        self._m2 += delta * (x - self._mean) * weight
        self.min = min(self.min, x)
        self.max = max(self.max, x)
        if self.samples is not None:
            self.samples.extend([x] * min(64, max(1, round(weight))))

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    def merge(self, other: "SampleStats") -> "SampleStats":
        """Fold another stats object into this one (parallel combine).

        Uses the Chan et al. pairwise update for mean/variance, so
        merging per-worker stats gives the same moments as streaming
        every sample through one object.  The sample reservoir is kept
        only if both sides kept theirs (order: self's samples, then
        other's).  Returns ``self`` for chaining.
        """
        if other.n == 0:
            return self
        if self.n == 0:
            self.n = other.n
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            self.samples = None if (self.samples is None or other.samples is None) \
                else list(other.samples)
            return self
        n = self.n + other.n
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.n * other.n / n
        self._mean += delta * other.n / n
        self.n = n
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        if self.samples is None or other.samples is None:
            self.samples = None
        else:
            self.samples.extend(other.samples)
        return self

    @property
    def mean(self) -> float:
        return self._mean if self.n else math.nan

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def percentile(self, q: float) -> float:
        """Linearly interpolated percentile (the numpy ``linear`` method)."""
        if self.samples is None:
            raise ValueError("percentiles need keep_samples=True")
        if not self.samples:
            return math.nan
        if not 0 <= q <= 100:
            raise ValueError(f"percentile out of range: {q}")
        ordered = sorted(self.samples)
        pos = q / 100 * (len(ordered) - 1)
        lo = math.floor(pos)
        hi = math.ceil(pos)
        if lo == hi:
            return ordered[lo]
        frac = pos - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac
