"""Discrete-event simulation kernel.

This is the substrate every other subsystem runs on.  It provides a
nanosecond-resolution virtual clock, a slot-array event queue, and cooperative
processes written as Python generators (in the style of SimPy, but
self-contained so the library has no simulation dependencies).

Typical use::

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(100)      # wait 100 ns
        return "done"

    proc = sim.process(worker(sim))
    sim.run()
    assert proc.value == "done"

Time is an integer number of nanoseconds throughout the library; see
:mod:`repro.units` for conversion helpers.
"""

from __future__ import annotations

import heapq
from collections import deque
from sys import getrefcount
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "Simulator",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (e.g. double-trigger)."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The interrupt ``cause`` is available as ``exc.cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event lifecycle: PENDING -> TRIGGERED (scheduled on the heap) -> PROCESSED
# (callbacks have run).  A triggered event carries either a value or an
# exception; waiting processes receive the value or have the exception
# thrown into them.
_PENDING = 0
_TRIGGERED = 1
_PROCESSED = 2


class Event:
    """A one-shot occurrence at a point in simulated time.

    Events are the unit of synchronisation: processes ``yield`` events and
    are resumed when the event is processed.
    """

    __slots__ = ("sim", "callbacks", "_state", "_value", "_ok", "cancelled")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] = []
        self._state = _PENDING
        self._value: Any = None
        self._ok = True
        # Set when the waiting process was interrupted away from this
        # event; queue primitives skip cancelled waiters instead of
        # handing them items nobody will consume.
        self.cancelled = False

    @property
    def triggered(self) -> bool:
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Trigger the event successfully with an optional ``value``."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        self._state = _TRIGGERED
        self._value = value
        self._ok = True
        self.sim._schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: int = 0) -> "Event":
        """Trigger the event with an exception."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        self._state = _TRIGGERED
        self._value = exc
        self._ok = False
        self.sim._schedule(self, delay)
        return self

    def _process(self) -> None:
        self._state = _PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]}>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._state = _TRIGGERED
        self._value = value
        sim._schedule(self, delay)


class Process(Event):
    """A cooperative process driven by a generator.

    The process itself is an :class:`Event` that triggers when the
    generator returns (with the return value) or raises (with the
    exception, unless nothing is waiting on it, in which case the
    exception propagates out of :meth:`Simulator.run`).
    """

    __slots__ = ("gen", "_target", "name", "_resume_cb")

    def __init__(self, sim: "Simulator", gen: Generator, name: Optional[str] = None):
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._target: Optional[Event] = None
        # One bound method for the life of the process: _resume is
        # registered as a callback on every event the process waits on,
        # and binding it per wait shows up at fast-path scale.
        self._resume_cb = self._resume
        # Bootstrap: start executing at the current time.
        init = sim.event()
        init.succeed()
        init.callbacks.append(self._resume_cb)
        self._target = init

    @property
    def is_alive(self) -> bool:
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current wait."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        if self._target is None:
            raise SimulationError(f"cannot interrupt unstarted process {self.name}")
        if not self._target.triggered:
            # Abandon the wait: queue primitives must not serve it.
            self._target.cancelled = True
        evt = self.sim.event()
        evt.fail(Interrupt(cause))
        evt.callbacks.append(self._resume_cb)

    def _resume(self, event: Event) -> None:
        # Stale wake-up: the process was interrupted (or otherwise resumed)
        # while this event was pending; ignore the original target firing.
        if event is not self._target and not isinstance(event._value, Interrupt):
            return
        if self._state != _PENDING:
            return
        self._target = None
        sim = self.sim
        sim._active_proc = self
        try:
            if event._ok:
                result = self.gen.send(event._value)
            else:
                result = self.gen.throw(event._value)
        except StopIteration as stop:
            sim._active_proc = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            sim._active_proc = None
            if self.callbacks:
                self.fail(exc)
            else:
                # No one is watching this process: crash the simulation so
                # errors are never silently swallowed.
                sim._crash(exc)
            return
        sim._active_proc = None
        if not isinstance(result, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {result!r}; processes must yield Events"
            )
        if result._state == _PROCESSED:
            # Already-processed events resume the process immediately (next
            # tick at the same timestamp).
            evt = sim.event()
            if result._ok:
                evt.succeed(result._value)
            else:
                # Re-deliver the failure.
                evt._state = _TRIGGERED
                evt._value = result._value
                evt._ok = False
                sim._schedule(evt, 0)
            evt.callbacks.append(self._resume_cb)
            self._target = evt
        else:
            result.callbacks.append(self._resume_cb)
            self._target = result


class Condition(Event):
    """Composite event over several sub-events (see :class:`AnyOf`/:class:`AllOf`)."""

    __slots__ = ("events", "_need", "_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event], need_all: bool):
        super().__init__(sim)
        self.events = list(events)
        for evt in self.events:
            if evt.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        self._need = len(self.events) if need_all else min(1, len(self.events))
        self._done = 0
        if self._need == 0:
            self.succeed({})
            return
        for evt in self.events:
            if evt.processed:
                self._check(evt)
            else:
                evt.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._done += 1
        if self._done >= self._need:
            self.succeed(
                {evt: evt._value for evt in self.events if evt.processed and evt._ok}
            )


class AnyOf(Condition):
    """Triggers when any sub-event triggers; value maps fired events to values."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, need_all=False)


class AllOf(Condition):
    """Triggers when all sub-events have triggered."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, need_all=True)


class Simulator:
    """The event loop: a clock plus a slot array of triggered events.

    Scheduled events live in a **slot array**: a dict mapping each
    pending timestamp to the list of events firing then (in scheduling
    order), plus a heap of the *distinct* timestamps.  Compared with the
    classic ``(time, eid, event)`` tuple heap this removes the tuple
    allocation and the global event-id counter, heap operations compare
    plain ints, and the heap only grows with the number of distinct
    future times rather than the number of pending events.

    Three fast paths keep the per-event cost low without changing the
    observable schedule:

    * **immediate queue** — a zero-delay event goes straight onto a FIFO
      deque.  Whenever time advances, the *entire* slot at the new time
      is transferred onto that deque before any of it is processed, so
      no slot can exist at the current time while user code runs; FIFO
      deque order therefore equals the (time, eid) order the tuple heap
      used to produce (slot lists preserve scheduling order, and later
      zero-delay events append behind the remainder of the batch exactly
      as later eids sorted behind earlier ones).
    * **batched event application** — advancing time pops one timestamp
      and applies its whole slot through the immediate deque, one heap
      pop per distinct time instead of one per event.
    * **event pools** — processed :class:`Timeout` and plain
      :class:`Event` instances are recycled through free lists.  An
      object is only pooled when its refcount proves nothing outside
      :meth:`step` still references it, so user code that holds onto an
      event (conditions, queued waiters, saved timers) is never handed a
      reused object.
    """

    #: Upper bound on each free list; beyond this, events are left to the GC.
    POOL_MAX = 2048

    # Slotted: kernel attributes are read on every event; the extra slots
    # host the lazily-attached observability context (obs.context) and the
    # optional kernel self-profiler (obs.profile).
    __slots__ = (
        "_now",
        "_slots",
        "_times",
        "_immediate",
        "_active_proc",
        "_crashed",
        "_timeout_pool",
        "_event_pool",
        "events_processed",
        "_repro_obs",
        "_profiler",
    )

    def __init__(self):
        self._now: int = 0
        self._slots: dict[int, list[Event]] = {}
        self._times: list[int] = []
        self._immediate: deque[Event] = deque()
        self._active_proc: Optional[Process] = None
        self._crashed: Optional[BaseException] = None
        self._timeout_pool: list[Timeout] = []
        self._event_pool: list[Event] = []
        #: Number of events processed by :meth:`step` (simbench reads this).
        self.events_processed = 0
        # Optional repro.obs.profile.KernelProfiler; run() delegates to its
        # instrumented loop only while one is installed *and* enabled, so
        # the cost when idle is one attribute check per run() call.
        self._profiler = None

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_proc

    # -- factory helpers ---------------------------------------------------
    def event(self) -> Event:
        pool = self._event_pool
        if pool:
            evt = pool.pop()
            evt._state = _PENDING
            evt._ok = True
            evt.cancelled = False
            return evt
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        delay = int(delay)
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative timeout delay: {delay}")
            evt = pool.pop()
            evt.delay = delay
            evt._state = _TRIGGERED
            evt._value = value
            evt._ok = True
            evt.cancelled = False
            # _schedule inlined: timeouts are the most common event kind.
            if delay:
                when = self._now + delay
                slots = self._slots
                slot = slots.get(when)
                if slot is None:
                    slots[when] = [evt]
                    heapq.heappush(self._times, when)
                else:
                    slot.append(evt)
            else:
                self._immediate.append(evt)
            return evt
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: Optional[str] = None) -> Process:
        return Process(self, gen, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: Event, delay: int = 0) -> None:
        if delay:
            when = self._now + int(delay)
            slots = self._slots
            slot = slots.get(when)
            if slot is None:
                slots[when] = [event]
                heapq.heappush(self._times, when)
            else:
                slot.append(event)
        else:
            # No slot can exist at the current time (time only advances by
            # draining the whole earliest slot into the immediate deque and
            # positive delays land strictly in the future), so appending
            # preserves global (time, scheduling-order) order.
            self._immediate.append(event)

    def _crash(self, exc: BaseException) -> None:
        self._crashed = exc

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or ``None`` if none is pending."""
        if self._immediate:
            return self._now
        return self._times[0] if self._times else None

    def step(self) -> None:
        """Process a single event."""
        immediate = self._immediate
        if not immediate:
            when = heapq.heappop(self._times)
            if when < self._now:  # pragma: no cover - defensive
                raise SimulationError("time went backwards")
            self._now = when
            immediate.extend(self._slots.pop(when))
        event = immediate.popleft()
        self.events_processed += 1
        event._process()
        if self._crashed is not None:
            exc, self._crashed = self._crashed, None
            raise exc
        # Recycle the event if nothing else can see it any more: refcount 2
        # is exactly our local binding plus getrefcount's own argument, so
        # user code holding a timer (any_of, saved events) blocks pooling.
        if getrefcount(event) == 2:
            cls = event.__class__
            if cls is Timeout:
                if len(self._timeout_pool) < self.POOL_MAX:
                    event._value = None
                    self._timeout_pool.append(event)
            elif cls is Event:
                if len(self._event_pool) < self.POOL_MAX:
                    event._value = None
                    self._event_pool.append(event)

    def run(self, until: Optional[int | Event] = None) -> Any:
        """Run until the queues drain, a deadline passes, or an event fires.

        ``until`` may be an absolute time (ns) or an :class:`Event`; when an
        event is given its value is returned (or its exception raised).

        The event loop is inlined here (hot kernel state — slot array,
        immediate queue, free lists — lives in locals for the whole run)
        rather than calling :meth:`step` per event; :meth:`step` remains
        the single-event reference implementation and the two are
        behaviour-identical.
        """
        profiler = self._profiler
        if profiler is not None and profiler.enabled:
            # The instrumented mirror of this loop (repro.obs.profile)
            # takes over for the whole run; it is schedule-identical.
            return profiler.run_profiled(until)
        slots = self._slots
        times = self._times
        immediate = self._immediate
        pop = heapq.heappop
        timeout_pool = self._timeout_pool
        event_pool = self._event_pool
        refcount = getrefcount
        pool_max = self.POOL_MAX
        processed = 0
        try:
            if isinstance(until, Event):
                stop = until
                if not stop.processed:
                    # Registering interest routes process failures into the
                    # event instead of crashing the whole simulation.
                    stop.callbacks.append(lambda _evt: None)
                while stop._state != _PROCESSED:
                    if immediate:
                        event = immediate.popleft()
                    elif times:
                        when = pop(times)
                        self._now = when
                        immediate.extend(slots.pop(when))
                        event = immediate.popleft()
                    else:
                        raise SimulationError(
                            "simulation ran out of events before the awaited event fired"
                        )
                    processed += 1
                    event._state = _PROCESSED
                    callbacks = event.callbacks
                    if callbacks:
                        event.callbacks = []
                        for cb in callbacks:
                            cb(event)
                    if self._crashed is not None:
                        exc, self._crashed = self._crashed, None
                        raise exc
                    if refcount(event) == 2:
                        cls = event.__class__
                        if cls is Timeout:
                            if len(timeout_pool) < pool_max:
                                event._value = None
                                timeout_pool.append(event)
                        elif cls is Event:
                            if len(event_pool) < pool_max:
                                event._value = None
                                event_pool.append(event)
                if stop._ok:
                    return stop._value
                raise stop._value
            deadline = None if until is None else int(until)
            while immediate or times:
                if immediate:
                    event = immediate.popleft()
                else:
                    when = times[0]
                    if deadline is not None and when > deadline:
                        self._now = deadline
                        return None
                    pop(times)
                    self._now = when
                    immediate.extend(slots.pop(when))
                    event = immediate.popleft()
                processed += 1
                event._state = _PROCESSED
                callbacks = event.callbacks
                if callbacks:
                    event.callbacks = []
                    for cb in callbacks:
                        cb(event)
                if self._crashed is not None:
                    exc, self._crashed = self._crashed, None
                    raise exc
                if refcount(event) == 2:
                    cls = event.__class__
                    if cls is Timeout:
                        if len(timeout_pool) < pool_max:
                            event._value = None
                            timeout_pool.append(event)
                    elif cls is Event:
                        if len(event_pool) < pool_max:
                            event._value = None
                            event_pool.append(event)
            if deadline is not None:
                self._now = deadline
            return None
        finally:
            self.events_processed += processed
