"""Unified datapath pipeline: :class:`Port`, :class:`PacketStage`,
:class:`CopyCharger`.

Every hop of the simulated packet path — virtio ring, VNET/P core,
bridge, host stack, physical NIC, link/switch — used to hand frames to
the next layer through bespoke glue (``rx_handler`` callables,
``attach_medium``, ``enqueue_inbound``, per-frame helper processes).
This module replaces that glue with one abstraction:

* :class:`Port` — a named, unidirectional hand-off point with exactly
  one downstream sink.  ``push()`` delivers synchronously (the sink may
  signal backpressure by returning ``False``); ``push_after()`` charges
  a latency and delivers through a single pooled kernel event instead of
  spawning a process per frame, which is the sim-kernel fast path for
  wire propagation, NIC receive completion and switch fabric traversal.
* :class:`PacketStage` — base class for datapath components.  A stage
  accepts frames through ``ingress(frame) -> bool`` and emits them
  through named :class:`Port`\\ s registered in ``stage.ports``.
* :class:`CopyCharger` — charged-not-performed copy accounting.  Frames
  are slotted descriptors whose payloads are shared by reference; a
  "copy" charges virtual time against the host memory system and counts
  the bytes, but never duplicates the payload object (the zero-copy
  analogue of VNET/P+ cut-through forwarding).

Ownership rules (see ``docs/architecture.md``):

1. Pushing a frame into a Port transfers ownership downstream; the
   pushing stage must not mutate or re-send the descriptor afterwards.
2. Payloads are immutable once a descriptor is in flight.  Stages that
   conceptually copy (VMM copy, bridge-VM crossing) go through
   :class:`CopyCharger` / ``MemorySystem.copy_at`` so the *time* and
   *bandwidth contention* of the copy are modelled without moving data.
3. A Port has exactly one sink.  Build-time wiring uses
   :meth:`Port.connect`, which raises on double connection (mirroring
   the old ``attach_medium`` contract); instrumentation harnesses that
   wrap-and-restore a sink (pcap taps, fault injectors) use
   :meth:`Port.rebind`.

Span integration: a Port constructed with a recorder and a stage name
records one span per ``push_after`` (t0 at push, t1 at delivery) with
``flow`` formatted exactly like :func:`repro.obs.span.flow_id`.  The
recorder is duck-typed so this module keeps zero dependencies beyond the
kernel.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Optional

from .core import _TRIGGERED, Simulator

__all__ = ["Port", "PacketStage", "CopyCharger"]


class Port:
    """A unidirectional frame hand-off point between two pipeline stages.

    Counters (``frames``, ``bytes``, ``drops``) are plain integers so a
    push costs two additions; expose them through the metrics registry
    at the owning stage if aggregate visibility is needed.
    """

    __slots__ = (
        "sim",
        "name",
        "sink",
        "frames",
        "bytes",
        "drops",
        "_spans",
        "_stage",
        "_who",
        "_where",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        spans: Any = None,
        stage: Optional[str] = None,
        who: str = "",
        where: str = "",
    ):
        self.sim = sim
        self.name = name
        self.sink: Optional[Callable[[Any], Any]] = None
        self.frames = 0
        self.bytes = 0
        self.drops = 0
        # Optional span configuration for push_after (one span per frame).
        self._spans = spans
        self._stage = stage
        self._who = who
        self._where = where

    @property
    def connected(self) -> bool:
        return self.sink is not None

    def connect(self, sink: Callable[[Any], Any]) -> None:
        """Build-time wiring; a Port has exactly one sink."""
        if self.sink is not None:
            raise RuntimeError(f"port {self.name} already connected")
        self.sink = sink

    def rebind(self, sink: Optional[Callable[[Any], Any]]) -> None:
        """Swap (or clear) the sink — for harnesses that wrap and restore."""
        self.sink = sink

    def push(self, frame: Any) -> bool:
        """Deliver ``frame`` to the sink now.

        Returns ``False`` when the sink refused the frame (backpressure:
        ring full, queue overflow) or no sink is connected; either way
        the drop is counted and the frame is gone — descriptor ownership
        passed to this port at the call.
        """
        self.frames += 1
        self.bytes += frame.size
        sink = self.sink
        if sink is None or sink(frame) is False:
            self.drops += 1
            return False
        return True

    def push_after(self, frame: Any, delay_ns: int) -> None:
        """Deliver ``frame`` after charging ``delay_ns`` of latency.

        Latency, not occupancy: concurrent pushes overlap freely (wire
        propagation, rx-interrupt delay, switch fabric).  Costs one
        pooled kernel event instead of a spawned process per frame; the
        configured stage span (if recording is on) brackets exactly
        ``[now, now + delay_ns]``.
        """
        sim = self.sim
        spans = self._spans
        evt = sim.event()
        if spans is not None and spans.enabled:
            span = spans.open(
                self._stage,
                who=self._who,
                where=self._where,
                flow=f"{frame.src}>{frame.dst}",
            )

            def _arrive(_evt: Any, span: Any = span) -> None:
                spans.close(span)
                self.push(frame)

            evt.callbacks.append(_arrive)
        else:
            evt.callbacks.append(lambda _evt: self.push(frame))
        # Inlined Event.succeed + Simulator._schedule: the event is fresh
        # from the pool, so the pending check is vacuous and the hand-off
        # costs one slot append (or an immediate-queue append).
        evt._state = _TRIGGERED
        if delay_ns:
            when = sim._now + int(delay_ns)
            slots = sim._slots
            slot = slots.get(when)
            if slot is None:
                slots[when] = [evt]
                heappush(sim._times, when)
            else:
                slot.append(evt)
        else:
            sim._immediate.append(evt)

    def stats(self) -> dict:
        return {"frames": self.frames, "bytes": self.bytes, "drops": self.drops}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "connected" if self.connected else "unconnected"
        return f"<Port {self.name} {state} frames={self.frames}>"


class PacketStage:
    """Base class for datapath components.

    A stage accepts frames synchronously through ``ingress(frame)``
    (return ``False`` to signal backpressure — the caller counts the
    drop) and emits them through named egress :class:`Port`\\ s created
    with :meth:`make_port`.  Stages whose ingress must *block* the
    producer (bridge tx buffers, virtio rings on the guest side) keep a
    :class:`~repro.sim.primitives.Store` in front instead; the
    ``ingress`` of such a stage is its non-blocking ``try_put`` face.

    Subclasses call :meth:`_init_stage` once their ``sim`` and display
    name are known, then create ports.  ``ports`` is the wiring
    introspection surface the pipeline tests (and debuggers) walk.
    """

    def _init_stage(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.ports: dict[str, Port] = {}

    def make_port(self, label: str, **span_cfg: Any) -> Port:
        port = Port(self.sim, f"{self.name}.{label}", **span_cfg)
        self.ports[label] = port
        return port

    def ingress(self, frame: Any) -> bool:
        raise NotImplementedError(f"{type(self).__name__} has no ingress")

    def port_stats(self) -> dict:
        """Per-port counters, keyed by port label."""
        return {label: port.stats() for label, port in self.ports.items()}


class CopyCharger:
    """Charged-not-performed copy accounting for descriptor frames.

    Wraps ``MemorySystem.copy_at``: the virtual time of the copy is
    charged against the shared memory system (so concurrent copies
    contend for bandwidth exactly as before), the copied bytes are
    counted, and **no data moves** — descriptor payloads are shared by
    reference end to end.
    """

    __slots__ = ("memory", "bw_Bps", "copies", "bytes", "_counter")

    def __init__(self, memory: Any, bw_Bps: float, counter: Any = None):
        self.memory = memory
        self.bw_Bps = bw_Bps
        self.copies = 0
        self.bytes = 0
        # Optional metrics-registry counter (charged bytes).
        self._counter = counter

    def charge(self, nbytes: int):
        """Generator: charge one copy of ``nbytes`` at the configured rate.

        Yields exactly the events ``memory.copy_at`` yields, so swapping
        a performed copy for a charged one is timing-neutral.
        """
        self.copies += 1
        self.bytes += nbytes
        if self._counter is not None:
            self._counter.inc(nbytes)
        yield from self.memory.copy_at(nbytes, self.bw_Bps)
