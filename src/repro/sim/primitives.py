"""Synchronisation primitives built on the event kernel.

* :class:`Store` — FIFO channel with optional capacity; the workhorse for
  packet queues (virtio rings, bridge buffers, NIC queues).
* :class:`Resource` — counted resource with FIFO request queue; models CPU
  cores and NIC transmit engines.
* :class:`Signal` — re-armable broadcast used for "work available" wakeups
  (e.g. a packet dispatcher sleeping until a ring becomes non-empty).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .core import _TRIGGERED, Event, SimulationError, Simulator

__all__ = ["Store", "Resource", "Signal"]


def _trigger_now(sim: Simulator, evt: Event, value: Any = None) -> None:
    """Trigger a known-pending event at the current time.

    Inlined ``Event.succeed(value)`` minus the double-trigger guard plus
    the zero-delay branch of ``Simulator._schedule`` — valid only for
    events this module created itself and therefore knows are pending
    (fresh from ``sim.event()``, or parked on a waiter queue that nothing
    else can trigger).  Store hand-offs are the hottest non-timeout event
    source in the simulator, which is why they get this shortcut.
    """
    evt._state = _TRIGGERED
    evt._value = value
    # Zero delay always means the immediate deque: the kernel never leaves
    # a slot at the current time (see Simulator._schedule).
    sim._immediate.append(evt)


class Store:
    """A FIFO queue that processes can block on.

    ``put`` blocks when the store is full (if a capacity is set) and
    ``get`` blocks when it is empty.  Both return events to ``yield`` on.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = "store"):
        if capacity is not None and capacity < 1:
            raise ValueError(f"store capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self.items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Return an event that fires once ``item`` is accepted."""
        evt = self.sim.event()
        capacity = self.capacity
        items = self.items
        if capacity is None or len(items) < capacity:
            items.append(item)
            _trigger_now(self.sim, evt)
            if self._getters:
                self._wake_getter()
        else:
            self._putters.append((evt, item))
        return evt

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False (drops) when full."""
        capacity = self.capacity
        items = self.items
        if capacity is not None and len(items) >= capacity:
            return False
        items.append(item)
        if self._getters:
            self._wake_getter()
        return True

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        evt = self.sim.event()
        items = self.items
        if items:
            _trigger_now(self.sim, evt, items.popleft())
            if self._putters:
                self._admit_putter()
        else:
            self._getters.append(evt)
        return evt

    def try_get(self) -> Any:
        """Non-blocking get; returns None when empty."""
        items = self.items
        if not items:
            return None
        item = items.popleft()
        if self._putters:
            self._admit_putter()
        return item

    def get_batch(self, limit: Optional[int] = None) -> list[Any]:
        """Non-blocking bulk drain: pop up to ``limit`` items (all when None).

        Equivalent to calling :meth:`try_get` in a loop — blocked putters
        are admitted as space frees up and their items are drained too —
        but in one call, which is what lets a single virtio kick or guest
        interrupt process its whole ring backlog cheaply.
        """
        items: list[Any] = []
        queue = self.items
        putters = self._putters
        while queue and (limit is None or len(items) < limit):
            items.append(queue.popleft())
            if putters:
                self._admit_putter()
        return items

    def _wake_getter(self) -> None:
        sim = self.sim
        getters = self._getters
        items = self.items
        while getters and items:
            getter = getters.popleft()
            if getter.cancelled:
                continue  # waiter was interrupted away; keep the item
            _trigger_now(sim, getter, items.popleft())
            if self._putters:
                self._admit_putter()

    def _admit_putter(self) -> None:
        sim = self.sim
        putters = self._putters
        items = self.items
        capacity = self.capacity
        while putters and (capacity is None or len(items) < capacity):
            putter, item = putters.popleft()
            if putter.cancelled:
                continue  # interrupted putter: its item is not enqueued
            items.append(item)
            _trigger_now(sim, putter)
            # The newly stored item may satisfy a waiting getter.
            if self._getters:
                self._wake_getter()


class Resource:
    """A counted resource with a FIFO wait queue.

    Usage::

        with-style is not available in generators; instead:

        yield res.request()
        try:
            ...
        finally:
            res.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def request(self) -> Event:
        evt = self.sim.event()
        if self.in_use < self.capacity:
            self.in_use += 1
            evt.succeed()
        else:
            self._waiters.append(evt)
        return evt

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.cancelled:
                continue  # interrupted away before acquiring
            # Hand the slot directly to the next live waiter.
            waiter.succeed()
            return
        self.in_use -= 1


class Signal:
    """Re-armable broadcast event.

    ``wait()`` returns an event tied to the *current* arming; ``fire()``
    triggers all outstanding waits and re-arms.  Used for edge-triggered
    notifications (ring non-empty, config changed, ...).
    """

    def __init__(self, sim: Simulator, name: str = "signal"):
        self.sim = sim
        self.name = name
        self._event = sim.event()
        self.fire_count = 0

    def wait(self) -> Event:
        return self._event

    def fire(self, value: Any = None) -> None:
        self.fire_count += 1
        evt, self._event = self._event, self.sim.event()
        evt.succeed(value)
