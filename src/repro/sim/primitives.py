"""Synchronisation primitives built on the event kernel.

* :class:`Store` — FIFO channel with optional capacity; the workhorse for
  packet queues (virtio rings, bridge buffers, NIC queues).
* :class:`Resource` — counted resource with FIFO request queue; models CPU
  cores and NIC transmit engines.
* :class:`Signal` — re-armable broadcast used for "work available" wakeups
  (e.g. a packet dispatcher sleeping until a ring becomes non-empty).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .core import Event, SimulationError, Simulator

__all__ = ["Store", "Resource", "Signal"]


class Store:
    """A FIFO queue that processes can block on.

    ``put`` blocks when the store is full (if a capacity is set) and
    ``get`` blocks when it is empty.  Both return events to ``yield`` on.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = "store"):
        if capacity is not None and capacity < 1:
            raise ValueError(f"store capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self.items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Return an event that fires once ``item`` is accepted."""
        evt = Event(self.sim)
        if not self.is_full:
            self.items.append(item)
            evt.succeed()
            self._wake_getter()
        else:
            self._putters.append((evt, item))
        return evt

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False (drops) when full."""
        if self.is_full:
            return False
        self.items.append(item)
        self._wake_getter()
        return True

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        evt = Event(self.sim)
        if self.items:
            evt.succeed(self.items.popleft())
            self._admit_putter()
        else:
            self._getters.append(evt)
        return evt

    def try_get(self) -> Any:
        """Non-blocking get; returns None when empty."""
        if not self.items:
            return None
        item = self.items.popleft()
        self._admit_putter()
        return item

    def _wake_getter(self) -> None:
        while self._getters and self.items:
            getter = self._getters.popleft()
            if getter.cancelled:
                continue  # waiter was interrupted away; keep the item
            getter.succeed(self.items.popleft())
            self._admit_putter()

    def _admit_putter(self) -> None:
        while self._putters and not self.is_full:
            putter, item = self._putters.popleft()
            if putter.cancelled:
                continue  # interrupted putter: its item is not enqueued
            self.items.append(item)
            putter.succeed()
            # The newly stored item may satisfy a waiting getter.
            self._wake_getter()


class Resource:
    """A counted resource with a FIFO wait queue.

    Usage::

        with-style is not available in generators; instead:

        yield res.request()
        try:
            ...
        finally:
            res.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def request(self) -> Event:
        evt = Event(self.sim)
        if self.in_use < self.capacity:
            self.in_use += 1
            evt.succeed()
        else:
            self._waiters.append(evt)
        return evt

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.cancelled:
                continue  # interrupted away before acquiring
            # Hand the slot directly to the next live waiter.
            waiter.succeed()
            return
        self.in_use -= 1


class Signal:
    """Re-armable broadcast event.

    ``wait()`` returns an event tied to the *current* arming; ``fire()``
    triggers all outstanding waits and re-arms.  Used for edge-triggered
    notifications (ring non-empty, config changed, ...).
    """

    def __init__(self, sim: Simulator, name: str = "signal"):
        self.sim = sim
        self.name = name
        self._event = Event(sim)
        self.fire_count = 0

    def wait(self) -> Event:
        return self._event

    def fire(self, value: Any = None) -> None:
        self.fire_count += 1
        evt, self._event = self._event, Event(self.sim)
        evt.succeed(value)
