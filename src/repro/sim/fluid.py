"""Hybrid fluid/packet simulation: a flow-level fast path in the kernel.

Packet-level simulation spends hundreds of kernel events per round trip
of a steady bulk transfer whose behaviour is, for long stretches,
entirely predictable: a ttcp/fig8 stream that has reached its stable
window moves bytes at a constant rate set by its bottleneck.  This
module models such flows *analytically* — the classic fluid-model move
of ns-3-class simulators — while everything else stays packet-level:

* A :class:`FluidRegion` (one per :class:`~repro.sim.core.Simulator`)
  watches established TCP connections for steady state: two consecutive
  rate windows within tolerance, no retransmissions, no duplicate ACKs,
  congestion window beyond the socket buffer (the paper's workloads are
  socket-buffer-limited), enough pending bytes to be worth it, and a
  compilable overlay path.
* A captured flow is *parked*: its sender and retransmit loops block on
  a region event, in-flight segments drain through normal ACK
  processing, and once ``snd_una == snd_nxt`` the region advances the
  flow in **strides** — one kernel timeout per stride instead of one
  event per packet — applying aggregate byte/segment/counter updates
  computed from max-min fair rate shares on the links the active flows
  share (:func:`max_min_rates`).
* Any transition de-escalates back to packet level **at the exact
  transition instant**: chaos fault windows (stride ends are clipped to
  the pre-declared transition times, and injector installs release
  affected flows), route changes, failover/failback, flow join/leave
  (rates are re-solved from a checkpoint), receiver-window stalls, and
  data exhaustion.  Stride segments therefore never span a transition —
  the property :attr:`FluidRegion.stride_log` records and the golden
  tests assert.

Observables stay bit-identical wherever packet-level runs (the mode is
default-off behind ``VnetTuning.fluid`` / ``REPRO_FLUID``); where fluid
runs, goodput and completion times are statistically validated against
all-packet golden runs by the hybrid test suite and the ``fluid``
section of ``tools/simbench.py``.

Layering: this module knows nothing about VNET/P.  The overlay-specific
path compilation and per-hop counter charging plug in through
:attr:`FluidRegion.compile_path` (see :mod:`repro.vnet.fluidpath`);
paths only need ``link_tokens`` (for fault matching) and a
``charge(data_segs, ack_segs)`` hook.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import TYPE_CHECKING, Any, Callable, Optional

from .core import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from ..proto.tcp import TcpConnection

__all__ = ["FluidFlow", "FluidRegion", "fluid_region_of", "max_min_rates"]

# Attribute on the per-simulator Observability context carrying the
# region singleton (mirrors the flow-cache registry idiom).
_REGION_ATTR = "_fluid_region"


def fluid_region_of(sim: Simulator) -> Optional["FluidRegion"]:
    """The simulator's :class:`FluidRegion`, or ``None`` when fluid is off."""
    obs = getattr(sim, "_repro_obs", None)
    if obs is None:
        return None
    return getattr(obs, _REGION_ATTR, None)


def max_min_rates(
    demands: list[float],
    memberships: list[frozenset[str]],
    capacities: dict[str, float],
) -> list[float]:
    """Max-min fair rate allocation (progressive water-filling).

    ``demands[i]`` is flow *i*'s offered rate (bytes/s), ``memberships[i]``
    the set of link tokens it traverses, ``capacities`` each link's
    capacity.  A flow crossing no known link is demand-limited.  The
    classic algorithm: repeatedly find the most constrained link, fix
    its unfrozen flows at the equal share (or their demand, whichever is
    smaller), remove the satisfied capacity, repeat.
    """
    n = len(demands)
    rates: list[Optional[float]] = [None] * n
    cap = dict(capacities)
    active = set(range(n))
    while active:
        # Equal share currently available to each active flow: the min
        # over its links of remaining capacity / active flows on it.
        share: dict[int, float] = {}
        for i in active:
            links = [tok for tok in memberships[i] if tok in cap]
            if not links:
                share[i] = demands[i]
                continue
            share[i] = min(
                cap[tok] / sum(1 for j in active if tok in memberships[j])
                for tok in links
            )
        # Freeze demand-limited flows first (they free capacity for the
        # rest); otherwise freeze the flows at the tightest share.
        limited = [i for i in active if demands[i] <= share[i]]
        if limited:
            frozen = {i: demands[i] for i in limited}
        else:
            tightest = min(share[i] for i in active)
            frozen = {i: tightest for i in active if share[i] <= tightest}
        for i, r in frozen.items():
            rates[i] = r
            active.discard(i)
            for tok in memberships[i]:
                if tok in cap:
                    cap[tok] = max(0.0, cap[tok] - r)
    return [r if r is not None else 0.0 for r in rates]


class FluidFlow:
    """One captured connection: the fluid model's per-flow state."""

    __slots__ = (
        "conn", "peer", "path", "demand_Bps", "rate_Bps", "active",
        "captured_ns", "last_advance_ns", "seg_carry", "zero_strides",
        "_parked",
    )

    def __init__(self, conn: "TcpConnection", peer: "TcpConnection",
                 path: Any, demand_Bps: float, captured_ns: int):
        self.conn = conn
        self.peer = peer
        self.path = path
        self.demand_Bps = demand_Bps
        self.rate_Bps = demand_Bps
        self.active = False          # True once in-flight data has drained
        self.captured_ns = captured_ns
        self.last_advance_ns = captured_ns
        self.seg_carry = 0           # bytes not yet amounting to a segment
        self.zero_strides = 0        # consecutive strides that moved nothing
        self._parked: list[Event] = []

    # -- the TcpConnection-facing protocol ---------------------------------
    def parked(self, conn: "TcpConnection") -> Event:
        """Event a captured connection's loops block on until release."""
        evt = conn.sim.event()
        self._parked.append(evt)
        return evt

    def on_ack_progress(self, conn: "TcpConnection") -> None:
        """ACK advanced ``snd_una`` while captured (the drain phase)."""
        region = fluid_region_of(conn.sim)
        if region is not None:
            region._on_ack_progress(self)

    def cancel(self, conn: "TcpConnection") -> None:
        """Loss recovery engaged while draining: capture was premature."""
        region = fluid_region_of(conn.sim)
        if region is not None:
            region._cancel(self, "loss-recovery")

    def _wake(self) -> None:
        parked, self._parked = self._parked, []
        for evt in parked:
            if not evt.triggered:
                evt.succeed()


class FluidRegion:
    """Per-simulator coordinator of fluid flows.

    Created by the VNET/P core when ``VnetTuning.fluid`` is on (see
    :meth:`ensure`); :meth:`repro.proto.stack.Stack.register_tcp` points
    every non-kernel connection's ``_fluid_watch`` at :meth:`_probe`.
    """

    #: Hop-count ceiling for path compilation (guards routing loops).
    MAX_HOPS = 16
    #: Strides that may move zero bytes before a receiver-limited flow
    #: is handed back to packet level.
    MAX_ZERO_STRIDES = 2
    #: Eligibility backoff multiplier after a cancelled capture.
    CANCEL_BACKOFF = 8

    def __init__(self, sim: Simulator, tuning: Any):
        self.sim = sim
        self.tuning = tuning
        self.min_bytes = int(tuning.fluid_min_bytes)
        self.check_ns = int(tuning.fluid_check_ns)
        self.max_stride_ns = int(tuning.fluid_max_stride_ns)
        self.min_stride_ns = int(tuning.fluid_min_stride_ns)
        self.rate_tolerance = float(tuning.fluid_rate_tolerance)
        # Domain objects registered by the path adapter (VNET/P cores).
        self.cores: list[Any] = []
        self.compile_path: Optional[Callable[["FluidRegion", Any], Any]] = None
        self.flows: dict[Any, FluidFlow] = {}     # conn -> flow (captured)
        self.active: list[FluidFlow] = []
        # Pre-declared transition instants (chaos schedules) and blackout
        # intervals [start, stop_or_None) during which no flow may run.
        self._transitions: list[int] = []
        self._blackouts: list[tuple[int, Optional[int]]] = []
        # Per-connection eligibility state:
        # [last_check_ns, bytes_acked_at, retransmits_at, last_rate_Bps].
        self._watch: dict[Any, list] = {}
        self._loop_proc = None
        #: Every advanced stride segment ``(t0, t1)`` — none may span a
        #: declared transition instant (golden fluid-fault test).
        self.stride_log: list[tuple[int, int]] = []
        from ..obs.context import Observability  # lazy: sim must not hard-depend on obs

        self.obs = Observability.of(sim)
        metrics = self.obs.metrics
        self._captures = metrics.counter("sim.fluid.captures")
        self._releases = metrics.labeled("sim.fluid.releases")
        self._strides = metrics.counter("sim.fluid.strides")
        self._bytes = metrics.counter("sim.fluid.bytes")
        self._active_gauge = metrics.gauge("sim.fluid.active_flows")
        self._rate_gauge = metrics.gauge("sim.fluid.rate_Bps")
        # Modeled per-segment RTT, weighted by the segments each stride
        # stands for (observe_weighted): packet-weighted like the packet
        # path's per-segment samples, not one point sample per stride.
        self._latency_hist = metrics.histogram(
            "sim.fluid.latency_ns",
            (10_000, 50_000, 100_000, 250_000, 500_000, 1_000_000, 5_000_000),
        )

    @classmethod
    def ensure(cls, sim: Simulator, tuning: Any) -> "FluidRegion":
        """The simulator's region, created on first call."""
        from ..obs.context import Observability

        obs = Observability.of(sim)
        region = getattr(obs, _REGION_ATTR, None)
        if region is None:
            region = cls(sim, tuning)
            setattr(obs, _REGION_ATTR, region)
        return region

    # -- registration ------------------------------------------------------
    def add_core(self, core: Any) -> None:
        """Register a VNET/P core for path walking; route changes on any
        registered core de-escalate every fluid flow at that instant."""
        if core in self.cores:
            return
        self.cores.append(core)
        core.routing.on_change(self._on_route_change)

    def _on_route_change(self) -> None:
        if self.flows:
            self.deescalate_all("route-change")

    def watch(self, conn: "TcpConnection") -> None:
        """Point ``conn``'s eligibility probe at this region."""
        conn._fluid_watch = self._probe

    def note_transitions(
        self,
        points: list[int],
        blackouts: Optional[list[tuple[int, Optional[int]]]] = None,
    ) -> None:
        """Pre-declare fault-schedule transition instants and windows."""
        for t in points:
            insort(self._transitions, int(t))
        if blackouts:
            self._blackouts.extend(blackouts)

    def next_transition_after(self, now: int) -> Optional[int]:
        idx = bisect_right(self._transitions, now)
        if idx < len(self._transitions):
            return self._transitions[idx]
        return None

    def in_blackout(self, now: int) -> bool:
        """Whether ``now`` falls inside any declared fault window."""
        for start, stop in self._blackouts:
            if start <= now and (stop is None or now < stop):
                return True
        return False

    # -- eligibility & capture ---------------------------------------------
    def _probe(self, conn: "TcpConnection") -> None:
        """Per-ACK steady-state probe (cheap early-outs; rate-limited)."""
        now = self.sim.now
        st = self._watch.get(conn)
        if st is None:
            self._watch[conn] = [now, conn.bytes_acked, conn.retransmits, -1.0]
            return
        if now - st[0] < self.check_ns:
            return
        interval = now - st[0]
        rate = (conn.bytes_acked - st[1]) * 1e9 / interval
        clean = conn.retransmits == st[2]
        prev_rate = st[3]
        st[0] = now
        st[1] = conn.bytes_acked
        st[2] = conn.retransmits
        st[3] = rate if clean else -1.0
        if not clean or rate <= 0.0 or prev_rate <= 0.0:
            return
        if abs(rate - prev_rate) > self.rate_tolerance * prev_rate:
            return
        if not self._eligible(conn, now):
            return
        self._capture(conn, (rate + prev_rate) / 2.0)

    def _eligible(self, conn: "TcpConnection", now: int) -> bool:
        from ..proto.tcp import CongestionState, TcpState

        if conn.state is not TcpState.ESTABLISHED or conn.peer is None:
            return False
        if conn.srtt is None or conn._backoff or conn._dup_acks:
            return False
        # A sender in fast recovery (or with unresolved SACK holes) is
        # mid loss-episode: it must stay packet-level until the Reno
        # machinery converges back to a steady window.
        if conn.cc_state is CongestionState.FAST_RECOVERY or conn._sacked:
            return False
        if conn.app_written - conn.snd_una < self.min_bytes:
            return False
        # Socket-buffer-limited regime: the congestion window no longer
        # governs the rate, so growth transients are over.  A cwnd-limited
        # flow (post-loss) is governed by Reno dynamics and never captured.
        if conn.cwnd < conn.sndbuf:
            return False
        return self._horizon_ok(now)

    def _horizon_ok(self, now: int) -> bool:
        if self.in_blackout(now):
            return False
        nt = self.next_transition_after(now)
        return nt is None or nt - now >= self.min_stride_ns

    def _capture(self, conn: "TcpConnection", demand_Bps: float) -> None:
        if self.compile_path is None:
            return
        path = self.compile_path(self, conn)
        if path is None:
            return
        flow = FluidFlow(conn, conn.peer, path, demand_Bps, self.sim.now)
        conn.fluid = flow
        self.flows[conn] = flow
        self._captures.inc()
        self.obs.health.log.emit(
            self.sim.now, "sim.fluid", "capture", "info",
            f"captured flow :{conn.local_port}->{conn.remote_ip}:"
            f"{conn.remote_port} at {demand_Bps / 1e9:.3f} GB/s",
            demand_Bps)
        if conn.snd_una == conn.snd_nxt:
            self._activate(flow)

    def _on_ack_progress(self, flow: FluidFlow) -> None:
        if not flow.active and flow.conn.snd_una == flow.conn.snd_nxt:
            self._activate(flow)

    def _activate(self, flow: FluidFlow) -> None:
        now = self.sim.now
        if not self._horizon_ok(now):
            self._cancel(flow, "horizon")
            return
        # A flow joining a shared link is a transition: checkpoint the
        # flows already in fluid at the old rates before re-solving.
        for other in self.active:
            self._advance_flow(other, other.last_advance_ns, now)
        flow.active = True
        flow.last_advance_ns = now
        flow.conn._rtt_probe = None
        self.active.append(flow)
        self._recompute()
        self._active_gauge.set(len(self.active), now_ns=now)
        if self._loop_proc is None:
            self._loop_proc = self.sim.process(
                self._stride_loop(), name="sim.fluid.strides"
            )

    def _cancel(self, flow: FluidFlow, reason: str) -> None:
        """Abort a capture (drain-phase loss, bad horizon): back to packets."""
        self._release(flow, reason)
        # Eligibility backoff: demand fresh stability windows before the
        # connection may be captured again.
        st = self._watch.get(flow.conn)
        if st is not None:
            st[0] = self.sim.now + self.CANCEL_BACKOFF * self.check_ns
            st[3] = -1.0

    # -- de-escalation (the packet-level handback) --------------------------
    def _release(self, flow: FluidFlow, reason: str) -> None:
        conn = flow.conn
        if self.flows.get(conn) is not flow:
            return
        if flow.active:
            self._advance_flow(flow, flow.last_advance_ns, self.sim.now)
            self.active.remove(flow)
        del self.flows[conn]
        conn.fluid = None
        flow._wake()
        self._releases.inc(reason)
        self._active_gauge.set(len(self.active), now_ns=self.sim.now)
        self.obs.health.log.emit(
            self.sim.now, "sim.fluid", "release", "info",
            f"released flow :{conn.local_port}->{conn.remote_ip}:"
            f"{conn.remote_port} ({reason})")

    def _external_release(self, victims: list[FluidFlow], reason: str) -> None:
        """Checkpoint every active flow at *now*, then release ``victims``.

        The checkpoint is what makes mid-stride transitions exact: bytes
        up to this instant moved at the old rates; the pending stride
        timer later advances the survivors at the re-solved rates.
        """
        now = self.sim.now
        # list() copy: a mode switch fired from inside an advance's
        # charge hook re-enters here and mutates self.active.
        for flow in list(self.active):
            self._advance_flow(flow, flow.last_advance_ns, now)
        for flow in victims:
            self._release(flow, reason)
        self._recompute()

    def deescalate_all(self, reason: str) -> int:
        """Release every captured flow (route change, failover, ...)."""
        victims = list(self.flows.values())
        self._external_release(victims, reason)
        return len(victims)

    def on_mode_switch(self, mode: Any = None) -> None:
        """Datapath regime change (guest/VMM-driven switch): per-packet
        costs just changed, so every captured rate — and every stability
        window measured under the old regime — is stale.  The probe backs
        off so the packet path re-converges in the new regime before any
        stability window is measured (the refill right after a release
        can look deceptively stable at the old rate)."""
        self.deescalate_all("mode-change")
        next_check = self.sim.now + self.CANCEL_BACKOFF * self.check_ns
        for st in self._watch.values():
            st[0] = next_check
            st[3] = -1.0

    def deescalate_port(self, port_name: str, reason: str) -> int:
        """Chaos hook: release the flows riding a faulted port.

        Per-overlay-link ports (``<host>.vbridge.link.<link>``) release
        exactly the flows whose compiled path crosses that link; any
        other placement is below link granularity and releases all
        (mirrors :func:`repro.vnet.flowcache.invalidate_for_fault`).
        """
        if ".vbridge.link." in port_name:
            victims = [
                f for f in self.flows.values()
                if port_name in f.path.link_tokens
            ]
        else:
            victims = list(self.flows.values())
        self._external_release(victims, reason)
        return len(victims)

    # -- the stride engine -------------------------------------------------
    def _stride_loop(self):
        sim = self.sim
        while self.active:
            now = sim.now
            # Every flow is checkpointed at ``now`` here (stride end,
            # join, or external release all advance first), so rates may
            # be re-solved without losing accumulated progress.
            self._recompute()
            end = self._stride_end(now)
            self._strides.inc()
            yield sim.timeout(end - now)
            now = sim.now
            for flow in list(self.active):
                self._advance_flow(flow, flow.last_advance_ns, now)
            self._release_done(now)
        self._loop_proc = None

    def _stride_end(self, now: int) -> int:
        """Latest instant this stride may reach: the max stride clipped
        to the next declared transition and each flow's data/receive-
        buffer exhaustion time (so releases land exactly on time)."""
        end = now + self.max_stride_ns
        nt = self.next_transition_after(now)
        if nt is not None:
            end = min(end, nt)
        for flow in self.active:
            rate = flow.rate_Bps
            if rate <= 0.0:
                continue
            conn, peer = flow.conn, flow.peer
            pending = conn.app_written - conn.snd_nxt
            if pending > 0:
                end = min(end, now + int(pending * 1e9 / rate) + 1)
            space = peer.rcvbuf - peer.recv_available
            if space > 0:
                # Half-fill the receive buffer per stride: the receiver
                # app drains on the stride's recv signal, an instant
                # *after* the advance, so filling it exactly would make
                # the next stride start space-bound at zero.
                end = min(end, now + int(space * 1e9 / (2.0 * rate)) + 1)
            else:
                # Buffer momentarily full (drain pending on the kernel's
                # immediate queue): take a short retry stride instead of
                # sleeping a whole max-stride moving nothing.
                end = min(end, now + self.min_stride_ns)
        return max(end, now + 1)

    def _advance_flow(self, flow: FluidFlow, t0: int, t1: int) -> int:
        """Apply ``[t0, t1)`` of analytic progress to one flow."""
        if t1 <= t0:
            return 0
        conn, peer = flow.conn, flow.peer
        budget = int(flow.rate_Bps * (t1 - t0) / 1e9)
        pending = conn.app_written - conn.snd_nxt
        space = peer.rcvbuf - peer.recv_available
        moved = min(budget, pending, max(0, space))
        if moved < 0:
            moved = 0
        flow.last_advance_ns = t1
        self.stride_log.append((t0, t1))
        flow.zero_strides = 0 if moved else flow.zero_strides + 1
        if not moved:
            return 0
        # Sender bookkeeping: data sent, acked and window edges exactly as
        # a per-packet exchange would have left them at t1.
        conn.snd_nxt += moved
        conn.snd_una = conn.snd_nxt
        conn.bytes_acked += moved
        conn._ack_progress_at = t1
        conn._last_ack_seen = conn.snd_una
        # Receiver bookkeeping.
        peer.rcv_nxt += moved
        peer.recv_available += moved
        peer.bytes_delivered += moved
        conn.peer_rwnd = peer.my_rwnd
        conn._window_edge = conn.snd_una + conn.peer_rwnd
        # Segment/frame accounting, carried across strides so totals
        # match the per-packet segmentation to within one MSS.
        total = moved + flow.seg_carry
        segs = total // conn.mss
        flow.seg_carry = total - segs * conn.mss
        if segs:
            conn.segments_sent += segs
            conn.segments_received += segs   # the per-segment ACKs
            peer.segments_received += segs
            peer.segments_sent += segs
            if conn.srtt is not None:
                self._latency_hist.observe_weighted(conn.srtt, segs)
            flow.path.charge(segs, segs)
        self._bytes.inc(moved)
        # One aggregate wakeup per stride instead of one per packet.
        conn._space_signal.fire()
        peer._recv_signal.fire()
        return moved

    def _release_done(self, now: int) -> None:
        for flow in list(self.active):
            conn = flow.conn
            if conn.app_written == conn.snd_nxt:
                self._release(flow, "drained")
            elif flow.zero_strides >= self.MAX_ZERO_STRIDES:
                self._release(flow, "flow-control")
            elif self.in_blackout(now):
                self._release(flow, "fault-window")

    def _recompute(self) -> None:
        """Re-solve max-min rate shares over the active flows."""
        flows = self.active
        if not flows:
            self._rate_gauge.set(0.0, now_ns=self.sim.now)
            return
        demands = [f.demand_Bps for f in flows]
        memberships = [f.path.link_tokens for f in flows]
        # Demand-derived capacities: the solo rate already reflects each
        # flow's bottleneck, so a shared link can carry at least the
        # largest solo rate crossing it (documented modelling choice).
        capacities: dict[str, float] = {}
        for f in flows:
            for tok in f.path.link_tokens:
                cap = capacities.get(tok, 0.0)
                if f.demand_Bps > cap:
                    capacities[tok] = f.demand_Bps
        rates = max_min_rates(demands, memberships, capacities)
        for f, r in zip(flows, rates):
            f.rate_Bps = r
        self._rate_gauge.set(sum(rates), now_ns=self.sim.now)

    # -- observability ------------------------------------------------------
    def register_activity(self, timeline: Any, series: Optional[str] = None):
        """Add a per-window active-flow-count series to a timeline."""
        def sample(now_ns: int) -> float:
            return float(len(self.active))

        return timeline.record(series or "sim.fluid.active_flows",
                               sample, unit="flows")

    def stats(self) -> dict:
        return {
            "captured": len(self.flows),
            "active": len(self.active),
            "captures": self._captures.value,
            "strides": self._strides.value,
            "bytes": self._bytes.value,
        }
