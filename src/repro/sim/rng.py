"""Deterministic random-number streams.

Every stochastic component draws from a named substream so that results
are reproducible regardless of the order in which components are created
or executed.  Substreams are derived from a root seed plus a stable hash
of the stream name.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """Factory for named, independent :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically."""
        gen = self._streams.get(name)
        if gen is None:
            key = zlib.crc32(name.encode("utf-8"))
            gen = np.random.default_rng(np.random.SeedSequence([self.seed, key]))
            self._streams[name] = gen
        return gen
