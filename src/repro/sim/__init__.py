"""Discrete-event simulation kernel used by every subsystem."""

from .core import (
    AllOf,
    AnyOf,
    Condition,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .pipeline import CopyCharger, PacketStage, Port
from .primitives import Resource, Signal, Store
from .rng import RandomStreams
from .trace import SampleStats, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
    "CopyCharger",
    "PacketStage",
    "Port",
    "Resource",
    "Signal",
    "Store",
    "RandomStreams",
    "SampleStats",
    "Tracer",
]
