"""Discrete-event simulation kernel used by every subsystem."""

from .core import (
    AllOf,
    AnyOf,
    Condition,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .primitives import Resource, Signal, Store
from .rng import RandomStreams
from .trace import SampleStats, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
    "Resource",
    "Signal",
    "Store",
    "RandomStreams",
    "SampleStats",
    "Tracer",
]
