"""VNET/P: the paper's core contribution, plus the VNET/U baseline and
the adaptive-overlay machinery the VNET model motivates (monitoring,
adaptation, VM migration)."""

from .adaptation import AdaptationEngine, FailoverRecord
from .inference import InferredTopology, Topology, infer_topology
from .bridge import VnetBridge
from .heartbeat import HeartbeatFrame, HeartbeatService
from .migration import MigrationResult, migrate_vm
from .monitor import LinkHealth, TrafficMonitor
from .control import ControlError, VnetControl
from .core import VnetCore
from .dispatcher import ModeController, wake_penalty
from .encap import ENCAP_OVERHEAD, VnetEncap
from .flowcache import FlowCache, FlowCacheEntry, FlowPath
from .lang import ParseError, parse_config, parse_line
from .overlay import (
    ANY_MAC,
    DEFAULT_VNET_PORT,
    DestType,
    InterfaceSpec,
    LinkProto,
    LinkSpec,
    RouteEntry,
    validate_mac,
)
from .routing import NoRouteError, RoutingTable
from .validation import OverlayIssue, ValidationReport, overlay_graph, validate_overlay
from .vnetu import DEFAULT_VNETU_PORT, VnetUDaemon

__all__ = [
    "AdaptationEngine",
    "FailoverRecord",
    "InferredTopology",
    "Topology",
    "infer_topology",
    "HeartbeatFrame",
    "HeartbeatService",
    "MigrationResult",
    "migrate_vm",
    "LinkHealth",
    "TrafficMonitor",
    "VnetBridge",
    "ControlError",
    "VnetControl",
    "VnetCore",
    "ModeController",
    "wake_penalty",
    "ENCAP_OVERHEAD",
    "VnetEncap",
    "FlowCache",
    "FlowCacheEntry",
    "FlowPath",
    "ParseError",
    "parse_config",
    "parse_line",
    "ANY_MAC",
    "DEFAULT_VNET_PORT",
    "DestType",
    "InterfaceSpec",
    "LinkProto",
    "LinkSpec",
    "RouteEntry",
    "validate_mac",
    "NoRouteError",
    "RoutingTable",
    "OverlayIssue",
    "ValidationReport",
    "overlay_graph",
    "validate_overlay",
    "DEFAULT_VNETU_PORT",
    "VnetUDaemon",
]
