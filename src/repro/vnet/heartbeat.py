"""Overlay link heartbeats: the active half of failure detection.

Each VNET/P core periodically emits a tiny :class:`HeartbeatFrame` on
every UDP overlay link it owns.  The frame rides the *real* datapath —
bridge TX queue, UDP encapsulation, host stack, physical network — so a
faulted link (partition, loss window, host pause) silences exactly the
heartbeats a real deployment would lose.  On arrival the receiving
core's :meth:`~repro.vnet.core.VnetCore._accept_inbound` intercepts the
frame (it never reaches a guest) and feeds the peer's
:class:`~repro.vnet.monitor.TrafficMonitor`, whose phi-style detector
(:meth:`~repro.vnet.monitor.TrafficMonitor.phi`) turns heartbeat
silence into a link-death verdict that the
:class:`~repro.vnet.adaptation.AdaptationEngine` acts on.

The service loop is bounded by ``until_ns`` so a drained ``sim.run()``
terminates; pass ``None`` only when the harness stops the simulator by
horizon itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..obs.context import Observability
from ..sim import Simulator
from .overlay import LinkProto

if TYPE_CHECKING:  # pragma: no cover
    from .core import VnetCore

__all__ = ["HeartbeatFrame", "HeartbeatService", "HEARTBEAT_SIZE"]

# On-wire size of a heartbeat (bytes): far below any MTU, so it never
# fragments and its encapsulation cost is a single datagram.
HEARTBEAT_SIZE = 64


class HeartbeatFrame:
    """A control frame probing one overlay link's liveness.

    Duck-typed like every pipeline frame (``size``/``src``/``dst``), but
    recognized *by class* on the inbound path — it is VNET control
    traffic, invisible to guests and to the routing table.
    """

    __slots__ = ("src_host_ip", "link_name", "seq")

    size = HEARTBEAT_SIZE
    payload_size = HEARTBEAT_SIZE

    def __init__(self, src_host_ip: str, link_name: str, seq: int):
        self.src_host_ip = src_host_ip
        self.link_name = link_name
        self.seq = seq

    @property
    def src(self) -> str:
        return f"hb:{self.src_host_ip}"

    @property
    def dst(self) -> str:
        return f"hb:{self.link_name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<HeartbeatFrame {self.src_host_ip} {self.link_name} "
                f"#{self.seq}>")


class HeartbeatService:
    """Emits heartbeats on every UDP overlay link of one core.

    Creates the core's :class:`~repro.vnet.monitor.TrafficMonitor` if
    none is installed, and registers every probed link with the
    monitor's liveness tracker so silence is measurable from the first
    beat onward.
    """

    def __init__(
        self,
        sim: Simulator,
        core: "VnetCore",
        interval_ns: int = 500_000,
        until_ns: Optional[int] = None,
    ):
        if interval_ns <= 0:
            raise ValueError(f"heartbeat interval must be positive, got {interval_ns}")
        self.sim = sim
        self.core = core
        self.interval_ns = int(interval_ns)
        self.until_ns = until_ns
        self.seq = 0
        metrics = Observability.of(sim).metrics
        prefix = f"vnet.heartbeat.{core.host.name}"
        self._sent = metrics.counter(f"{prefix}.sent")
        self._send_failed = metrics.counter(f"{prefix}.send_failed")
        if core.monitor is None:
            from .monitor import TrafficMonitor

            TrafficMonitor(sim, core)

    @property
    def sent(self) -> int:
        """Heartbeats enqueued onto the bridge so far."""
        return self._sent.value

    def start(self):
        """Spawn the emit loop; returns the simulator process."""
        return self.sim.process(
            self._loop(), name=f"{self.core.name}.heartbeat"
        )

    def _loop(self):
        core = self.core
        monitor = core.monitor
        while self.until_ns is None or self.sim.now < self.until_ns:
            for link in list(core.links.values()):
                if link.proto is not LinkProto.UDP:
                    continue
                monitor.watch_link(link.name, link.dst_ip, self.interval_ns)
                frame = HeartbeatFrame(
                    src_host_ip=core.host.ip, link_name=link.name, seq=self.seq
                )
                self.seq += 1
                if core.bridge is not None and core.bridge.txq.try_put((frame, link)):
                    self._sent.inc()
                else:
                    self._send_failed.inc()
            yield self.sim.timeout(self.interval_ns)
