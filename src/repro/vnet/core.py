"""The VNET/P core: routing and dispatching raw Ethernet packets (Sect. 4.3).

The core intercepts every Ethernet packet from registered virtual NICs
and forwards it either to a VM on the same host (interface destination)
or to the outside world through the VNET/P bridge (link destination).

Dispatch runs in one of two contexts:

* **guest-driven** — inside the VM-exit handler of the TX kick, stalling
  the guest VCPU for the duration (lowest latency for sparse traffic);
* **VMM-driven** — in dedicated packet-dispatcher threads that poll the
  virtio rings (highest throughput for bulk traffic), with guest kicks
  suppressed.

Inbound packets from the bridge go through a receive queue served by
``n_dispatchers`` dispatcher threads (Fig. 4/5: multicore scaling).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..config import VnetMode, VnetTuning
from ..obs.context import Observability
from ..obs.span import (
    STAGE_COPY,
    STAGE_COPY_ASYNC,
    STAGE_DISPATCH,
    STAGE_INJECT,
)
from ..proto.ethernet import BROADCAST_MAC, EthernetFrame
from ..sim import CopyCharger, PacketStage, Simulator, Store, Tracer
from .dispatcher import ModeController, YieldState
from .flowcache import FlowCache, FlowCacheEntry
from .heartbeat import HeartbeatFrame
from .overlay import DestType, InterfaceSpec, LinkSpec, RouteEntry
from .routing import NoRouteError, RoutingTable

if TYPE_CHECKING:  # pragma: no cover
    from ..host.machine import Host
    from ..palacios.virtio import VirtioNIC
    from .bridge import VnetBridge

__all__ = ["VnetCore"]


class VnetCore(PacketStage):
    """Per-host VNET/P core embedded in the Palacios VMM."""

    def __init__(
        self,
        sim: Simulator,
        host: "Host",
        tuning: Optional[VnetTuning] = None,
        tracer: Optional[Tracer] = None,
    ):
        self._init_stage(sim, f"{host.name}.vnet")
        self.host = host
        self.tuning = tuning or VnetTuning()
        self.costs = host.params.vnet_costs
        self.tracer = tracer or Tracer()
        self.routing = RoutingTable(self.costs, cache_enabled=self.tuning.routing_cache)
        # Per-flow fast path (ONCache-style, see repro.vnet.flowcache):
        # subscribes to routing changes so a compiled flow can never
        # outlive the route it was compiled from.
        self.flowcache: Optional[FlowCache] = (
            FlowCache(sim, self) if self.tuning.flow_cache else None
        )
        # Hybrid fluid/packet fast path (repro.sim.fluid): registering
        # the core lets the region compile overlay paths through it and
        # subscribes fluid flows to this table's route changes.
        self.fluid_region = None
        if self.tuning.fluid:
            from .fluidpath import install_fluid

            self.fluid_region = install_fluid(sim, self)
        self.links: dict[str, LinkSpec] = {}
        self.interfaces: dict[str, "VirtioNIC"] = {}
        self.if_specs: dict[str, InterfaceSpec] = {}
        self.if_by_mac: dict[str, "VirtioNIC"] = {}
        self.bridge: Optional["VnetBridge"] = None
        self.controllers: dict[str, ModeController] = {}
        self.rx_queue: Store = Store(sim, capacity=16384, name=f"{host.name}.vnet.rxq")
        # Inbound pipeline port: bridges (Linux UDP/TCP decap, Kitten
        # bridge VM, promiscuous direct receive) push unwrapped guest
        # frames here; the sink feeds the dispatcher rx queue.
        self.inbound = self.make_port("inbound")
        self.inbound.connect(self._accept_inbound)
        # Statistics live in the shared metrics registry under
        # ``vnet.core.<host>.*``; the attribute names below stay readable
        # as plain ints through the properties that follow.
        self.obs = Observability.of(sim)
        metrics = self.obs.metrics
        prefix = f"vnet.core.{host.name}"
        self._pkts_from_guest = metrics.counter(f"{prefix}.pkts_from_guest")
        self._pkts_to_guest = metrics.counter(f"{prefix}.pkts_to_guest")
        self._pkts_to_bridge = metrics.counter(f"{prefix}.pkts_to_bridge")
        self._pkts_dropped_no_route = metrics.counter(f"{prefix}.dropped_no_route")
        self._pkts_dropped_ring_full = metrics.counter(f"{prefix}.dropped_ring_full")
        self._guest_driven_dispatches = metrics.counter(
            f"{prefix}.guest_driven_dispatches"
        )
        self._vmm_driven_dispatches = metrics.counter(
            f"{prefix}.vmm_driven_dispatches"
        )
        # Dispatcher backlog as a time-weighted gauge (set with
        # timestamps so time_avg() reads mean depth, not last value).
        self._rxq_depth = metrics.gauge(f"{prefix}.rxq_depth")
        # Descriptor-frame copies are charged, never performed: the
        # charger accounts the single in-VMM copy (Sect. 4.7) against
        # the host memory system and counts the bytes.
        self.copier = CopyCharger(
            host.memory,
            self.costs.copy_bw_Bps,
            counter=metrics.counter(f"{prefix}.copied_bytes"),
        )
        # Optional observers (see repro.vnet.monitor).
        self.monitor = None
        host.vnet_core = self
        for i in range(self.tuning.n_dispatchers):
            sim.process(self._rx_dispatcher(i), name=f"{self.name}.rxd{i}")

    # -- statistics (registry-backed, read-only views) ---------------------------
    @property
    def pkts_from_guest(self) -> int:
        return self._pkts_from_guest.value

    @property
    def pkts_to_guest(self) -> int:
        return self._pkts_to_guest.value

    @property
    def pkts_to_bridge(self) -> int:
        return self._pkts_to_bridge.value

    @property
    def pkts_dropped_no_route(self) -> int:
        return self._pkts_dropped_no_route.value

    @property
    def pkts_dropped_ring_full(self) -> int:
        return self._pkts_dropped_ring_full.value

    @property
    def guest_driven_dispatches(self) -> int:
        return self._guest_driven_dispatches.value

    @property
    def vmm_driven_dispatches(self) -> int:
        return self._vmm_driven_dispatches.value

    # -- configuration (driven by the control component) ------------------------
    def add_link(self, link: LinkSpec) -> None:
        if link.name in self.links:
            raise ValueError(f"{self.name}: duplicate link {link.name!r}")
        self.links[link.name] = link

    def remove_link(self, name: str) -> None:
        if name not in self.links:
            raise KeyError(f"{self.name}: no such link {name!r}")
        if self.routing.routes_to(DestType.LINK, name):
            raise ValueError(f"{self.name}: link {name!r} still referenced by routes")
        del self.links[name]

    def register_interface(self, spec: InterfaceSpec, nic: "VirtioNIC") -> None:
        """Register a virtual NIC with VNET/P (done at VM configuration
        time, Sect. 4.4); installs the kick handler backend."""
        if spec.name in self.interfaces:
            raise ValueError(f"{self.name}: duplicate interface {spec.name!r}")
        if nic.mac != spec.mac:
            raise ValueError(
                f"{self.name}: interface {spec.name!r} MAC {spec.mac} != NIC MAC {nic.mac}"
            )
        self.interfaces[spec.name] = nic
        self.if_specs[spec.name] = spec
        self.if_by_mac[spec.mac] = nic
        self.controllers[spec.name] = ModeController(self.sim, nic, self.tuning)
        if self.fluid_region is not None:
            # A guest/VMM mode switch changes per-packet datapath costs,
            # so any analytic rate captured under the old mode is stale:
            # de-escalate at the exact switch instant.
            self.controllers[spec.name].on_switch.append(
                self.fluid_region.on_mode_switch
            )
        nic.register_backend(self._make_kick_handler(spec.name))
        # One or more dispatcher threads per NIC (Fig. 4: idle cores can be
        # employed to raise packet-forwarding bandwidth).
        for i in range(self.tuning.n_dispatchers):
            self.sim.process(
                self._tx_dispatcher(spec.name), name=f"{self.name}.txd{i}.{spec.name}"
            )

    def remove_interface(self, name: str) -> None:
        """Detach a virtual NIC (e.g. ahead of a VM migration)."""
        if name not in self.interfaces:
            raise KeyError(f"{self.name}: no such interface {name!r}")
        if self.routing.routes_to(DestType.INTERFACE, name):
            raise ValueError(f"{self.name}: interface {name!r} still referenced by routes")
        nic = self.interfaces.pop(name)
        spec = self.if_specs.pop(name)
        del self.if_by_mac[spec.mac]
        ctl = self.controllers.pop(name)
        # Detach the data path: no more kicks into this core, and wake any
        # dispatcher blocked on the mode signal so it can exit.
        nic._kick_handler = None
        nic.suppress_kicks = False
        ctl.mode_changed.fire()

    def add_route(self, route: RouteEntry) -> None:
        if route.dest_type is DestType.LINK and route.dest_name not in self.links:
            raise ValueError(f"{self.name}: route references unknown link {route.dest_name!r}")
        if (
            route.dest_type is DestType.INTERFACE
            and route.dest_name not in self.interfaces
        ):
            raise ValueError(
                f"{self.name}: route references unknown interface {route.dest_name!r}"
            )
        self.routing.add(route)

    def add_routes(self, routes: list[RouteEntry]) -> int:
        """Bulk route installation: validate everything, then load once.

        The topology compiler provisions whole host tables in one call;
        validating every destination up front keeps the all-or-nothing
        contract of :meth:`add_route`, and the single
        :meth:`~repro.vnet.routing.RoutingTable.load` keeps derived
        caches (flow cache, lookup index) from flushing per entry.
        Returns the number of routes installed.
        """
        for route in routes:
            if route.dest_type is DestType.LINK and route.dest_name not in self.links:
                raise ValueError(
                    f"{self.name}: route references unknown link {route.dest_name!r}"
                )
            if (
                route.dest_type is DestType.INTERFACE
                and route.dest_name not in self.interfaces
            ):
                raise ValueError(
                    f"{self.name}: route references unknown interface {route.dest_name!r}"
                )
        return self.routing.load(routes)

    def attach_bridge(self, bridge: "VnetBridge") -> None:
        self.bridge = bridge
        self.host.vnet_bridge = bridge

    def local_macs(self) -> set[str]:
        return set(self.if_by_mac)

    def stats(self) -> dict:
        """Operational counters, as the control interface would expose them."""
        return {
            "pkts_from_guest": self.pkts_from_guest,
            "pkts_to_guest": self.pkts_to_guest,
            "pkts_to_bridge": self.pkts_to_bridge,
            "dropped_no_route": self.pkts_dropped_no_route,
            "dropped_ring_full": self.pkts_dropped_ring_full,
            "guest_driven_dispatches": self.guest_driven_dispatches,
            "vmm_driven_dispatches": self.vmm_driven_dispatches,
            "routing_entries": len(self.routing),
            "routing_cache_hit_rate": self.routing.cache_hit_rate,
            "flow_cache": self.flowcache.stats() if self.flowcache else None,
            "links": sorted(self.links),
            "interfaces": sorted(self.interfaces),
            "modes": {
                name: ctl.mode.value for name, ctl in self.controllers.items()
            },
        }

    # -- guest TX path -------------------------------------------------------------
    def _make_kick_handler(self, if_name: str):
        def handler(nic: "VirtioNIC"):
            return self._on_kick(if_name, nic)

        return handler

    def _on_kick(self, if_name: str, nic: "VirtioNIC"):
        """Runs inside the TX-kick VM exit (guest VCPU stalled)."""
        ctl = self.controllers.get(if_name)
        if ctl is None:
            # The interface was unregistered (VM migrating away) while this
            # kick was in flight; the frame stays queued for the new core.
            yield self.sim.timeout(0)
            return
        if ctl.mode is VnetMode.GUEST_DRIVEN:
            # Batched ring drain: one VM exit dispatches every frame the
            # guest queued (and any that land while earlier ones process).
            while True:
                frames = nic.txq.get_batch()
                if not frames:
                    break
                for frame in frames:
                    ctl.note_packet()
                    self._guest_driven_dispatches.inc()
                    yield from self._process_outbound(frame)
        else:
            # VMM-driven: the dispatcher thread owns the TXQ; the kick (if
            # one slipped in before suppression took effect) is a no-op.
            yield self.sim.timeout(0)

    def _tx_dispatcher(self, if_name: str):
        """Per-NIC transmit dispatcher thread (active in VMM-driven mode)."""
        nic = self.interfaces[if_name]
        ctl = self.controllers[if_name]
        ystate = YieldState(self.sim, self.tuning, base_wakeup_ns=self.costs.idle_wakeup_ns)
        # Single-dispatcher backlog drain, mirroring _rx_dispatcher.
        drain = self.tuning.n_dispatchers == 1
        while True:
            if self.interfaces.get(if_name) is not nic:
                return  # interface unregistered (VM migrated away)
            if ctl.mode is not VnetMode.VMM_DRIVEN:
                yield ctl.mode_changed.wait()
                continue
            blocked = len(nic.txq) == 0
            frame = yield nic.txq.get()
            while True:
                penalty = ystate.penalty(blocked)
                if blocked:
                    penalty += self.host.wakeup_noise_ns()
                if penalty:
                    with self.obs.spans.span(
                        STAGE_DISPATCH, who=self.name, where="vmm", flow_of=frame
                    ):
                        yield self.sim.timeout(penalty)
                ystate.note_work()
                ctl.note_packet()
                self._vmm_driven_dispatches.inc()
                yield from self._process_outbound(frame)
                # note_packet above may have switched the controller back
                # to guest-driven, and the VM may have migrated away: the
                # drain must re-establish the outer loop's guards before
                # claiming another frame.
                if (
                    not drain
                    or ctl.mode is not VnetMode.VMM_DRIVEN
                    or self.interfaces.get(if_name) is not nic
                ):
                    break
                frame = nic.txq.try_get()
                if frame is None:
                    break
                blocked = False

    def _process_outbound(self, frame: EthernetFrame):
        """Generator: route one guest frame and hand it onward."""
        self._pkts_from_guest.inc()
        if self.monitor is not None:
            self.monitor.observe(frame.src, frame.dst, frame.size)
        cache = self.flowcache
        if cache is not None and frame.dst != BROADCAST_MAC:
            hit = cache.lookup(frame.src, frame.dst)
            if hit is not None:
                yield from self._forward_cached(frame, hit)
                return
        entry = None
        with self.obs.spans.span(
            STAGE_DISPATCH, who=self.name, where="vmm", flow_of=frame
        ):
            yield self.sim.timeout(self.costs.dispatch_ns)
            if frame.dst != BROADCAST_MAC:
                try:
                    entry, cost = self.routing.lookup(frame.src, frame.dst)
                except NoRouteError:
                    self._pkts_dropped_no_route.inc()
                    self.tracer.record(self.sim.now, f"{self.name}.no_route", frame)
                    return
                yield self.sim.timeout(cost)
        if entry is None:
            yield from self._broadcast(frame)
        else:
            if cache is not None:
                cache.install(frame.src, frame.dst, entry)
            yield from self._forward(frame, entry)

    def _broadcast(self, frame: EthernetFrame):
        """Deliver a broadcast frame to every local interface (except the
        sender) and every link."""
        for mac, nic in self.if_by_mac.items():
            if mac != frame.src:
                yield from self._deliver_local(frame, nic)
        for link in self.links.values():
            yield from self._send_via_bridge(frame, link)

    def _forward(self, frame: EthernetFrame, entry: RouteEntry):
        if entry.dest_type is DestType.INTERFACE:
            nic = self.interfaces[entry.dest_name]
            yield from self._deliver_local(frame, nic)
        else:
            link = self.links[entry.dest_name]
            yield from self._send_via_bridge(frame, link)

    def _forward_cached(self, frame: EthernetFrame, hit: FlowCacheEntry,
                        penalty: int = 0, ystate: Optional[YieldState] = None):
        """The compiled fast path: one merged charge, pre-resolved hand-off.

        Under the timing-neutral cost model ``hit.charge_ns`` equals the
        dispatch + warm-lookup charges of the full chain, collapsed into
        a single timeout, so simulated time is bit-identical while the
        kernel processes fewer events.  ``penalty``/``ystate`` mirror
        the rx dispatcher's wakeup accounting: the wakeup penalty is
        merged into the same timeout (one kernel event instead of two)
        and ``note_work_at`` pins the adaptive yield strategy's idle
        clock to the instant the unmerged chain would have noted work.
        """
        with self.obs.spans.span(
            STAGE_DISPATCH, who=self.name, where="vmm", flow_of=frame
        ):
            if ystate is not None:
                ystate.note_work_at(self.sim.now + penalty)
            yield self.sim.timeout(penalty + hit.charge_ns)
        if hit.nic is not None:
            yield from self._deliver_local(frame, hit.nic)
        else:
            yield from self._send_via_bridge(frame, hit.path)

    def _deliver_local(self, frame: EthernetFrame, nic: "VirtioNIC"):
        """Copy the packet into a local VM's virtio RXQ and notify it.

        With VNET/P+'s *cut-through forwarding* the dispatcher only peeks
        the header and reserves the ring slot; the body copy streams
        concurrently (still contending for the memory system).  With
        *optimistic interrupts* the irq is raised while the data is still
        moving, overlapping the guest's wakeup with the copy.
        """
        if self.tuning.cut_through:
            with self.obs.spans.span(
                STAGE_COPY, who=self.name, where="vmm", flow_of=frame
            ):
                yield self.sim.timeout(self.costs.cut_through_ns)
            if self.tuning.optimistic_interrupts:
                nic.raise_irq()  # guest starts waking while the copy streams
            self.sim.process(self._finish_local_copy(frame, nic), name=f"{self.name}.ct")
            return
        with self.obs.spans.span(
            STAGE_COPY, who=self.name, where="vmm", flow_of=frame
        ):
            yield from self.copier.charge(frame.size)
        yield from self._complete_delivery(frame, nic)

    def _finish_local_copy(self, frame: EthernetFrame, nic: "VirtioNIC"):
        """Overlapped tail of a cut-through delivery (own process)."""
        with self.obs.spans.span(
            STAGE_COPY_ASYNC, who=self.name, where="vmm", flow_of=frame
        ):
            yield from self.copier.charge(frame.size)
        yield from self._complete_delivery(frame, nic)

    def _complete_delivery(self, frame: EthernetFrame, nic: "VirtioNIC"):
        ring_was_empty = len(nic.rxq) == 0
        if nic.deliver_to_guest(frame):
            self._pkts_to_guest.inc()
            for name, inic in self.interfaces.items():
                if inic is nic:
                    self.controllers[name].note_packet()
                    break
            if ring_was_empty:
                # Interrupt injection work on the dispatching side (possibly
                # a cross-core IPI, Sect. 4.3).
                with self.obs.spans.span(
                    STAGE_INJECT, who=self.name, where="vmm", flow_of=frame
                ):
                    yield self.sim.timeout(self.host.params.vmm.interrupt_inject_ns)
            nic.raise_irq()
        else:
            self._pkts_dropped_ring_full.inc()

    def _send_via_bridge(self, frame: EthernetFrame, link: LinkSpec):
        """The single in-VMM copy (Sect. 4.7): TXQ -> bridge buffer.

        Under cut-through forwarding the bridge starts encapsulating while
        the body still streams: the copy leaves the dispatcher's serial
        path (but still occupies the memory system for contention).
        """
        if self.bridge is None:
            raise RuntimeError(f"{self.name}: no bridge attached for link {link.name!r}")
        if self.tuning.cut_through:
            with self.obs.spans.span(
                STAGE_COPY, who=self.name, where="vmm", flow_of=frame
            ):
                yield self.sim.timeout(self.costs.cut_through_ns)
            self.sim.process(
                self._shadow_copy(frame.size), name=f"{self.name}.ctcopy"
            )
        else:
            with self.obs.spans.span(
                STAGE_COPY, who=self.name, where="vmm", flow_of=frame
            ):
                yield from self.copier.charge(frame.size)
        self._pkts_to_bridge.inc()
        yield self.bridge.txq.put((frame, link))

    def _shadow_copy(self, nbytes: int):
        """Body copy streaming off the critical path (memory contention only)."""
        with self.obs.spans.span(STAGE_COPY_ASYNC, who=self.name, where="vmm"):
            yield from self.copier.charge(nbytes)

    # -- inbound path (from the bridge) -----------------------------------------------
    def _accept_inbound(self, frame: EthernetFrame) -> bool:
        """Inbound port sink: queue a frame for the rx dispatchers.

        Heartbeats are VNET control traffic: they are consumed here
        (feeding the monitor's liveness tracker) and never enter the
        guest-facing dispatch queue.
        """
        if frame.__class__ is HeartbeatFrame:
            if self.monitor is not None:
                self.monitor.note_heartbeat_from(frame.src_host_ip)
            return True
        if not self.rx_queue.try_put(frame):
            self._pkts_dropped_ring_full.inc()
            return False
        self._rxq_depth.set(len(self.rx_queue), now_ns=self.sim.now)
        return True

    # PacketStage entry point (what ``inbound`` is wired to).
    ingress = _accept_inbound

    def enqueue_inbound(self, frame: EthernetFrame) -> None:
        """Bridge upcall: an unencapsulated guest frame arrived from outside.

        Legacy name; equivalent to ``core.inbound.push(frame)``.
        """
        self.inbound.push(frame)

    def _rx_dispatcher(self, index: int):
        """Inbound packet dispatcher thread (one of ``n_dispatchers``)."""
        ystate = YieldState(self.sim, self.tuning, base_wakeup_ns=self.costs.idle_wakeup_ns)
        # With a single dispatcher, a non-empty queue after a frame
        # completes is drained synchronously (try_get) instead of paying
        # one kernel hand-off event per frame; with several dispatchers
        # the blocking get() arbitrates which thread picks up work, so
        # draining would change the concurrency the Fig. 4/5 scaling
        # scenarios measure.
        drain = self.tuning.n_dispatchers == 1
        rxq = self.rx_queue
        while True:
            blocked = len(rxq) == 0
            frame = yield rxq.get()
            while True:
                self._rxq_depth.set(len(rxq), now_ns=self.sim.now)
                penalty = ystate.penalty(blocked)
                if blocked:
                    penalty += self.host.wakeup_noise_ns()
                yield from self._process_inbound(frame, penalty, ystate)
                if not drain:
                    break
                frame = rxq.try_get()
                if frame is None:
                    break
                blocked = False

    def _process_inbound(self, frame: EthernetFrame, penalty: int, ystate: YieldState):
        """Generator: route one inbound frame (rx dispatcher body)."""
        cache = self.flowcache
        if cache is not None and frame.dst != BROADCAST_MAC:
            hit = cache.lookup(frame.src, frame.dst)
            if hit is not None:
                yield from self._forward_cached(
                    frame, hit, penalty=penalty, ystate=ystate
                )
                return
        entry = None
        broadcast = False
        with self.obs.spans.span(
            STAGE_DISPATCH, who=self.name, where="vmm", flow_of=frame
        ):
            # Wakeup penalty and dispatch charge merged into one timeout;
            # note_work_at keeps the adaptive idle clock on the unmerged
            # instant, and the route lookup still happens at exactly
            # now + penalty + dispatch_ns.
            ystate.note_work_at(self.sim.now + penalty)
            yield self.sim.timeout(penalty + self.costs.dispatch_ns)
            if frame.dst == BROADCAST_MAC:
                broadcast = True
            else:
                try:
                    entry, cost = self.routing.lookup(frame.src, frame.dst)
                except NoRouteError:
                    self._pkts_dropped_no_route.inc()
                    return
                yield self.sim.timeout(cost)
        if broadcast:
            for nic in self.if_by_mac.values():
                yield from self._deliver_local(frame, nic)
            return
        # A packet arriving from the overlay may be destined for a local
        # interface or may be forwarded onward (overlay waypoint).
        if cache is not None:
            cache.install(frame.src, frame.dst, entry)
        yield from self._forward(frame, entry)
