"""The VNET configuration language (Sect. 4.6).

VNET/P reuses VNET/U's control language so existing user-level tools
work unchanged.  The subset implemented here covers overlay
construction, teardown, and inspection::

    add interface <name> mac <mac>
    add link <name> udp <ip>[:<port>]
    add link <name> tcp <ip>[:<port>]
    add link <name> direct
    add route src <mac|any> dst <mac|any> link <name>
    add route src <mac|any> dst <mac|any> interface <name>
    del link <name>
    del interface <name>
    del route src <mac|any> dst <mac|any>
    list links | list interfaces | list routes

Lines starting with ``#`` and blank lines are ignored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from .overlay import (
    DEFAULT_VNET_PORT,
    DestType,
    InterfaceSpec,
    LinkProto,
    LinkSpec,
    RouteEntry,
    validate_mac,
)

__all__ = [
    "ParseError",
    "AddInterface",
    "AddLink",
    "AddRoute",
    "DelLink",
    "DelInterface",
    "DelRoute",
    "ListCmd",
    "Command",
    "parse_line",
    "parse_config",
    "render_command",
    "render_config",
]


class ParseError(ValueError):
    """Malformed control-language input."""


@dataclass(frozen=True)
class AddInterface:
    spec: InterfaceSpec


@dataclass(frozen=True)
class AddLink:
    spec: LinkSpec


@dataclass(frozen=True)
class AddRoute:
    route: RouteEntry


@dataclass(frozen=True)
class DelLink:
    name: str


@dataclass(frozen=True)
class DelInterface:
    name: str


@dataclass(frozen=True)
class DelRoute:
    src_mac: str
    dst_mac: str


@dataclass(frozen=True)
class ListCmd:
    what: str  # "links" | "interfaces" | "routes"


Command = Union[AddInterface, AddLink, AddRoute, DelLink, DelInterface, DelRoute, ListCmd]


def _parse_endpoint(text: str) -> tuple[str, int]:
    if ":" in text:
        ip, _, port_s = text.partition(":")
        try:
            port = int(port_s)
        except ValueError:
            raise ParseError(f"bad port in endpoint {text!r}") from None
        if not 0 < port < 65536:
            raise ParseError(f"port out of range in {text!r}")
        return ip, port
    return text, DEFAULT_VNET_PORT


def parse_line(line: str) -> Optional[Command]:
    """Parse one control line; returns None for blanks/comments."""
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    tokens = line.split()
    head = tokens[0].lower()
    try:
        if head == "add":
            return _parse_add(tokens[1:])
        if head == "del":
            return _parse_del(tokens[1:])
        if head == "list":
            if len(tokens) != 2 or tokens[1] not in ("links", "interfaces", "routes"):
                raise ParseError("usage: list links|interfaces|routes")
            return ListCmd(tokens[1])
    except IndexError:
        raise ParseError(f"truncated command: {line!r}") from None
    raise ParseError(f"unknown command: {line!r}")


def _parse_add(tokens: list[str]) -> Command:
    kind = tokens[0].lower()
    if kind == "interface":
        if len(tokens) != 4 or tokens[2].lower() != "mac":
            raise ParseError("usage: add interface <name> mac <mac>")
        return AddInterface(InterfaceSpec(name=tokens[1], mac=tokens[3]))
    if kind == "link":
        name, proto_s = tokens[1], tokens[2].lower()
        if proto_s == "direct":
            if len(tokens) != 3:
                raise ParseError("usage: add link <name> direct")
            return AddLink(LinkSpec(name=name, proto=LinkProto.DIRECT))
        if proto_s in ("udp", "tcp"):
            if len(tokens) != 4:
                raise ParseError(f"usage: add link <name> {proto_s} <ip>[:<port>]")
            ip, port = _parse_endpoint(tokens[3])
            proto = LinkProto.UDP if proto_s == "udp" else LinkProto.TCP
            return AddLink(LinkSpec(name=name, proto=proto, dst_ip=ip, dst_port=port))
        raise ParseError(f"unknown link protocol {proto_s!r}")
    if kind == "route":
        # add route src <mac|any> dst <mac|any> link|interface <name>
        if (
            len(tokens) != 7
            or tokens[1].lower() != "src"
            or tokens[3].lower() != "dst"
            or tokens[5].lower() not in ("link", "interface")
        ):
            raise ParseError(
                "usage: add route src <mac|any> dst <mac|any> link|interface <name>"
            )
        dest_type = DestType.LINK if tokens[5].lower() == "link" else DestType.INTERFACE
        return AddRoute(
            RouteEntry(
                src_mac=tokens[2],
                dst_mac=tokens[4],
                dest_type=dest_type,
                dest_name=tokens[6],
            )
        )
    raise ParseError(f"unknown add target {kind!r}")


def _parse_del(tokens: list[str]) -> Command:
    kind = tokens[0].lower()
    if kind == "link":
        if len(tokens) != 2:
            raise ParseError("usage: del link <name>")
        return DelLink(tokens[1])
    if kind == "interface":
        if len(tokens) != 2:
            raise ParseError("usage: del interface <name>")
        return DelInterface(tokens[1])
    if kind == "route":
        if len(tokens) != 5 or tokens[1].lower() != "src" or tokens[3].lower() != "dst":
            raise ParseError("usage: del route src <mac|any> dst <mac|any>")
        return DelRoute(validate_mac(tokens[2]), validate_mac(tokens[4]))
    raise ParseError(f"unknown del target {kind!r}")


def parse_config(text: str) -> list[Command]:
    """Parse a whole configuration file; raises with line numbers on error."""
    commands = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        try:
            cmd = parse_line(line)
        except ParseError as exc:
            raise ParseError(f"line {lineno}: {exc}") from None
        if cmd is not None:
            commands.append(cmd)
    return commands


def render_command(cmd: Command) -> str:
    """The control-language line for one command (inverse of :func:`parse_line`).

    ``parse_line(render_command(cmd)) == cmd`` for every command the
    parser can produce; the topology compiler uses this to *emit* a
    compiled host configuration as VNET/U-compatible text, so generated
    overlays can be driven through exactly the tooling path the paper's
    hand-written configurations used.
    """
    if isinstance(cmd, AddInterface):
        return f"add interface {cmd.spec.name} mac {cmd.spec.mac}"
    if isinstance(cmd, AddLink):
        link = cmd.spec
        if link.proto is LinkProto.DIRECT:
            return f"add link {link.name} direct"
        return f"add link {link.name} {link.proto.value} {link.dst_ip}:{link.dst_port}"
    if isinstance(cmd, AddRoute):
        r = cmd.route
        return (
            f"add route src {r.src_mac} dst {r.dst_mac} "
            f"{r.dest_type.value} {r.dest_name}"
        )
    if isinstance(cmd, DelLink):
        return f"del link {cmd.name}"
    if isinstance(cmd, DelInterface):
        return f"del interface {cmd.name}"
    if isinstance(cmd, DelRoute):
        return f"del route src {cmd.src_mac} dst {cmd.dst_mac}"
    if isinstance(cmd, ListCmd):
        return f"list {cmd.what}"
    raise TypeError(f"cannot render {cmd!r}")


def render_config(commands: list[Command]) -> str:
    """A configuration file body for ``commands``, one line each."""
    return "\n".join(render_command(cmd) for cmd in commands)
