"""Encapsulation of guest Ethernet frames for overlay transport (Sect. 4.5).

An encapsulated send wraps the raw guest frame in a UDP datagram (the
outer UDP/IP/Ethernet headers are added — and their 42 bytes charged —
by the host stack when the bridge transmits on its in-kernel socket).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..proto.base import next_pdu_id
from ..proto.ethernet import EthernetFrame

__all__ = ["VnetEncap", "ENCAP_OVERHEAD"]

# Outer Ethernet (14) + IP (20) + UDP (8) headers around the inner frame.
ENCAP_OVERHEAD = 42


@dataclass(slots=True)
class VnetEncap:
    """UDP payload carrying one guest Ethernet frame over an overlay link."""

    inner: EthernetFrame
    link_name: str
    id: int = field(default_factory=next_pdu_id)

    @property
    def size(self) -> int:
        return self.inner.size
