"""Overlay configuration validation.

A misconfigured overlay fails silently: packets to an unrouted MAC are
dropped, a link pointing at the wrong port blackholes, a waypoint
missing a forward route strands traffic.  Before (or after) an
adaptation pass, :func:`validate_overlay` walks every (source VM,
destination MAC) pair through the cores' routing tables — following
links hop by hop, exactly as packets would — and reports unreachable
destinations, forwarding loops, and dangling links.

The overlay graph itself (cores as nodes, links as edges) is exposed as
a :mod:`networkx` digraph for further analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import networkx as nx

from .overlay import DestType, LinkProto
from .routing import NoRouteError

if TYPE_CHECKING:  # pragma: no cover
    from .core import VnetCore

__all__ = ["OverlayIssue", "ValidationReport", "overlay_graph", "validate_overlay"]

MAX_HOPS = 16


@dataclass
class OverlayIssue:
    """One problem found while walking the overlay."""

    kind: str           # "unreachable" | "loop" | "dangling-link" | "black-hole"
    where: str          # core name
    detail: str


@dataclass
class ValidationReport:
    """Outcome of a validation pass."""

    issues: list[OverlayIssue] = field(default_factory=list)
    paths_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.issues

    def render(self) -> str:
        if self.ok:
            return f"overlay OK ({self.paths_checked} paths checked)"
        lines = [f"overlay has {len(self.issues)} issue(s):"]
        for issue in self.issues:
            lines.append(f"  [{issue.kind}] {issue.where}: {issue.detail}")
        return "\n".join(lines)


def overlay_graph(cores: list["VnetCore"]) -> nx.DiGraph:
    """Cores as nodes, UDP/TCP links as directed edges (by target host IP)."""
    by_ip = {core.host.ip: core for core in cores}
    graph = nx.DiGraph()
    for core in cores:
        graph.add_node(core.name, ip=core.host.ip, macs=sorted(core.local_macs()))
    for core in cores:
        for link in core.links.values():
            if link.proto is LinkProto.DIRECT:
                continue
            target = by_ip.get(link.dst_ip)
            if target is not None:
                graph.add_edge(core.name, target.name, link=link.name)
    return graph


def validate_overlay(cores: list["VnetCore"]) -> ValidationReport:
    """Check that every guest MAC is reachable from every core."""
    report = ValidationReport()
    by_ip = {core.host.ip: core for core in cores}
    all_macs = {mac: core for core in cores for mac in core.local_macs()}

    # Dangling links first: links that point at no known core.
    for core in cores:
        for link in core.links.values():
            if link.proto is not LinkProto.DIRECT and link.dst_ip not in by_ip:
                report.issues.append(
                    OverlayIssue(
                        kind="dangling-link",
                        where=core.name,
                        detail=f"link {link.name!r} targets unknown host {link.dst_ip}",
                    )
                )

    src_probe = "02:00:00:00:00:01"
    for start in cores:
        for mac, owner in all_macs.items():
            if mac in start.local_macs():
                continue
            report.paths_checked += 1
            current: Optional["VnetCore"] = start
            visited = []
            for _hop in range(MAX_HOPS):
                visited.append(current.name)
                try:
                    entry, _ = current.routing.lookup(src_probe, mac)
                except NoRouteError:
                    report.issues.append(
                        OverlayIssue(
                            kind="unreachable" if current is start else "black-hole",
                            where=current.name,
                            detail=f"no route for {mac} "
                            f"(path {' -> '.join(visited)})",
                        )
                    )
                    current = None
                    break
                if entry.dest_type is DestType.INTERFACE:
                    if current is not owner:
                        report.issues.append(
                            OverlayIssue(
                                kind="black-hole",
                                where=current.name,
                                detail=f"{mac} routed to a local interface but "
                                f"lives on {owner.name}",
                            )
                        )
                    current = None
                    break
                link = current.links[entry.dest_name]
                if link.proto is LinkProto.DIRECT:
                    current = None  # leaves the overlay; assume delivered
                    break
                nxt = by_ip.get(link.dst_ip)
                if nxt is None:
                    report.issues.append(
                        OverlayIssue(
                            kind="black-hole",
                            where=current.name,
                            detail=f"{mac} forwarded onto dangling link {link.name!r}",
                        )
                    )
                    current = None
                    break
                current = nxt
            else:
                report.issues.append(
                    OverlayIssue(
                        kind="loop",
                        where=start.name,
                        detail=f"{mac}: {' -> '.join(visited[:6])} ... never terminates",
                    )
                )
    return report
