"""The VNET/P control component (Sect. 4.6).

A user-space daemon that validates configuration commands and applies
them to the in-VMM core through its expanded interface.  Local control
comes from configuration text (file contents); remote control arrives
over a TCP control port speaking the same language as VNET/U clients,
served inside the simulated network so adaptation engines (e.g. VADAPT)
can reconfigure a running overlay.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim import Simulator
from .lang import (
    AddInterface,
    AddLink,
    AddRoute,
    Command,
    DelInterface,
    DelLink,
    DelRoute,
    ListCmd,
    parse_config,
    parse_line,
)

if TYPE_CHECKING:  # pragma: no cover
    from .core import VnetCore

__all__ = ["VnetControl", "ControlError"]

CONTROL_PORT = 5003


class ControlError(RuntimeError):
    """A validated-but-unappliable command (e.g. dangling reference)."""


class VnetControl:
    """Control daemon bound to one VNET/P core."""

    def __init__(self, sim: Simulator, core: "VnetCore"):
        self.sim = sim
        self.core = core
        self.applied = 0

    # -- local control ------------------------------------------------------
    def apply_config(self, text: str) -> list[str]:
        """Validate and apply a configuration file; returns list output."""
        return self.apply_commands(parse_config(text))

    def apply_commands(self, commands: list[Command]) -> list[str]:
        """Apply a command sequence, batching consecutive route adds.

        Compiler-emitted host configurations are dominated by long runs
        of ``add route`` lines; those runs go through the core's bulk
        :meth:`~repro.vnet.core.VnetCore.add_routes` so the routing
        table fires one change notification per run instead of one per
        route.  Semantics are identical to applying the commands one by
        one (``applied`` still counts each command individually).
        """
        replies: list[str] = []
        pending: list[AddRoute] = []

        def flush() -> None:
            if not pending:
                return
            try:
                self.core.add_routes([cmd.route for cmd in pending])
            except (ValueError, KeyError) as exc:
                raise ControlError(str(exc)) from exc
            self.applied += len(pending)
            pending.clear()

        for cmd in commands:
            if isinstance(cmd, AddRoute):
                pending.append(cmd)
                continue
            flush()
            replies.extend(self.apply(cmd))
        flush()
        return replies

    def apply(self, cmd: Command) -> list[str]:
        """Apply one command to the core; returns any listing output."""
        core = self.core
        try:
            if isinstance(cmd, AddInterface):
                raise ControlError(
                    "interfaces are registered at VM configuration time; "
                    f"cannot hot-add {cmd.spec.name!r}"
                )
            if isinstance(cmd, AddLink):
                core.add_link(cmd.spec)
            elif isinstance(cmd, AddRoute):
                core.add_route(cmd.route)
            elif isinstance(cmd, DelLink):
                core.remove_link(cmd.name)
            elif isinstance(cmd, DelInterface):
                core.remove_interface(cmd.name)
            elif isinstance(cmd, DelRoute):
                n = core.routing.remove_matching(src_mac=cmd.src_mac, dst_mac=cmd.dst_mac)
                if n == 0:
                    raise ControlError(
                        f"no route matches src={cmd.src_mac} dst={cmd.dst_mac}"
                    )
            elif isinstance(cmd, ListCmd):
                return self._listing(cmd.what)
            else:  # pragma: no cover - parser is exhaustive
                raise ControlError(f"unhandled command {cmd!r}")
        except (ValueError, KeyError) as exc:
            raise ControlError(str(exc)) from exc
        self.applied += 1
        return []

    def _listing(self, what: str) -> list[str]:
        core = self.core
        if what == "links":
            return [
                f"link {l.name} {l.proto.value} {l.dst_ip}:{l.dst_port}"
                if l.dst_ip
                else f"link {l.name} {l.proto.value}"
                for l in core.links.values()
            ]
        if what == "interfaces":
            return [f"interface {s.name} mac {s.mac}" for s in core.if_specs.values()]
        return [
            f"route src {r.src_mac} dst {r.dst_mac} {r.dest_type.value} {r.dest_name}"
            for r in core.routing.entries
        ]

    # -- remote control (TCP port speaking the VNET/U language) ---------------
    def serve(self, port: int = CONTROL_PORT) -> None:
        """Start the TCP control server on the host stack."""
        listener = self.core.host.stack.tcp_listen(port)
        self.sim.process(self._accept_loop(listener), name="vnetctl.accept")

    def _accept_loop(self, listener):
        from ..proto.tcp import TcpMessageChannel

        while True:
            conn = yield from listener.accept()
            channel = TcpMessageChannel(conn)
            self.sim.process(self._session(channel), name="vnetctl.session")

    def _session(self, channel):
        """One control session: line commands in, reply strings out."""
        while True:
            try:
                line = yield from channel.recv_message()
            except EOFError:
                return
            try:
                cmd = parse_line(str(line))
                output = self.apply(cmd) if cmd is not None else []
                reply = "\n".join(output) or "ok"
            except (ControlError, ValueError) as exc:
                reply = f"error: {exc}"
            yield from channel.send_message(reply, max(1, len(reply)))
