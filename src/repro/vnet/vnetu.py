"""VNET/U: the user-level overlay daemon baseline (Sect. 3).

VNET/U implements the same overlay model as VNET/P but as a user-space
daemon: every guest packet crosses the kernel/user boundary several
times (guest -> VMM -> host tap device -> daemon -> host socket, and the
mirror image on receive), each crossing paying a context transition and
a copy, plus select()-style dispatch in the daemon.  Those transitions
are exactly what VNET/P eliminates, and what limits VNET/U to ~71 MB/s
and ~0.88 ms latency on the paper's hardware.

The daemon reuses the same routing table and link/interface model as
VNET/P (the two systems speak compatible configuration languages and
encapsulation, Sect. 4.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..proto.ethernet import BROADCAST_MAC, EthernetFrame
from ..sim import Simulator, Store
from .encap import VnetEncap
from .overlay import DestType, InterfaceSpec, LinkProto, LinkSpec, RouteEntry
from .routing import NoRouteError, RoutingTable

if TYPE_CHECKING:  # pragma: no cover
    from ..host.machine import Host
    from ..palacios.virtio import VirtioNIC

__all__ = ["VnetUDaemon", "DEFAULT_VNETU_PORT"]

DEFAULT_VNETU_PORT = 5004


class VnetUDaemon:
    """User-level VNET daemon on one host."""

    def __init__(self, sim: Simulator, host: "Host", port: int = DEFAULT_VNETU_PORT):
        self.sim = sim
        self.host = host
        self.params = host.params.vnetu
        self.port = port
        self.name = f"{host.name}.vnetu"
        self.routing = RoutingTable(host.params.vnet_costs, cache_enabled=True)
        self.links: dict[str, LinkSpec] = {}
        self.interfaces: dict[str, "VirtioNIC"] = {}
        self.if_by_mac: dict[str, "VirtioNIC"] = {}
        # The tap device queue between the VMM and the daemon.
        self.tapq: Store = Store(sim, capacity=8192, name=f"{self.name}.tapq")
        # User-level socket: syscalls charged on every send/recv.
        self.sock = host.stack.udp_socket(port, in_kernel=False)
        self.pkts_routed = 0
        self.pkts_dropped = 0
        sim.process(self._tx_loop(), name=f"{self.name}.tx")
        sim.process(self._rx_loop(), name=f"{self.name}.rx")

    # -- configuration ---------------------------------------------------------
    def add_link(self, link: LinkSpec) -> None:
        if link.proto is not LinkProto.UDP:
            raise ValueError(f"{self.name}: VNET/U links are UDP (got {link.proto})")
        self.links[link.name] = link

    def add_route(self, route: RouteEntry) -> None:
        if route.dest_type is DestType.LINK and route.dest_name not in self.links:
            raise ValueError(f"{self.name}: unknown link {route.dest_name!r}")
        if route.dest_type is DestType.INTERFACE and route.dest_name not in self.interfaces:
            raise ValueError(f"{self.name}: unknown interface {route.dest_name!r}")
        self.routing.add(route)

    def register_interface(self, spec: InterfaceSpec, nic: "VirtioNIC") -> None:
        self.interfaces[spec.name] = nic
        self.if_by_mac[spec.mac] = nic
        nic.register_backend(self._kick_handler)

    # -- data path ---------------------------------------------------------------
    def _kick_handler(self, nic: "VirtioNIC"):
        """VM-exit handler: shove guest frames through the host tap device.

        Charged in guest context: one kernel/user-bound copy into the tap
        plus the transition the VMM pays to signal it.
        """
        params = self.params
        while True:
            frame = nic.txq.try_get()
            if frame is None:
                break
            yield self.sim.timeout(
                params.transition_ns + self._copy_ns(frame.size)
            )
            if not self.tapq.try_put(frame):
                self.pkts_dropped += 1

    def _copy_ns(self, nbytes: int) -> int:
        return int(round(nbytes * 1e9 / self.params.copy_bw_Bps))

    def _daemon_work_ns(self, nbytes: int) -> int:
        """Per-packet user-level cost: transitions, select dispatch,
        routing/encapsulation at user level, and the remaining copies."""
        params = self.params
        return (
            (params.transitions_per_packet - 1) * params.transition_ns
            + params.select_overhead_ns
            + params.daemon_process_ns
            + (params.copies_per_packet - 1) * self._copy_ns(nbytes)
        )

    def _tx_loop(self):
        """Daemon: read tap, route, encapsulate, send on the UDP socket."""
        params = self.params
        while True:
            blocked = len(self.tapq) == 0
            frame = yield self.tapq.get()
            if blocked:
                # Daemon was asleep; pay user-process scheduling latency.
                yield self.sim.timeout(params.sched_latency_ns)
            yield self.sim.timeout(self._daemon_work_ns(frame.size))
            try:
                entry, _ = self.routing.lookup(frame.src, frame.dst)
            except NoRouteError:
                self.pkts_dropped += 1
                continue
            self.pkts_routed += 1
            if entry.dest_type is DestType.INTERFACE:
                yield from self._deliver_local(frame, self.interfaces[entry.dest_name])
            else:
                link = self.links[entry.dest_name]
                encap = VnetEncap(inner=frame, link_name=link.name)
                yield from self.sock.sendto(encap, link.dst_ip, link.dst_port)

    def _rx_loop(self):
        """Daemon: receive encapsulated packets, deliver into the guest."""
        params = self.params
        while True:
            blocked = len(self.sock.rx) == 0
            payload, _src, _sport = yield from self.sock.recv()
            if not isinstance(payload, VnetEncap):
                continue
            if blocked:
                # Daemon was asleep; pay user-process scheduling latency
                # (amortised away under streaming load).
                yield self.sim.timeout(params.sched_latency_ns)
            frame = payload.inner
            yield self.sim.timeout(self._daemon_work_ns(frame.size))
            nic = self.if_by_mac.get(frame.dst)
            if nic is None and frame.dst != BROADCAST_MAC:
                self.pkts_dropped += 1
                continue
            targets = (
                list(self.if_by_mac.values()) if nic is None else [nic]
            )
            for target in targets:
                yield from self._deliver_local(frame, target)

    def _deliver_local(self, frame: EthernetFrame, nic: "VirtioNIC"):
        """Daemon -> VMM ioctl -> guest RXQ + interrupt."""
        params = self.params
        yield self.sim.timeout(params.transition_ns + self._copy_ns(frame.size))
        if nic.deliver_to_guest(frame):
            self.pkts_routed += 1
            nic.raise_irq()
        else:
            self.pkts_dropped += 1


    # -- control (the same language the VNET/P control component speaks) ------
    def apply_config(self, text: str) -> list[str]:
        """Apply VNET configuration text to this daemon.

        VNET/U and VNET/P share the configuration language (Sect. 4.6);
        the daemon supports the overlay-construction subset (links,
        routes, listings).
        """
        from .lang import AddLink, AddRoute, DelRoute, ListCmd, parse_config

        replies: list[str] = []
        for cmd in parse_config(text):
            if isinstance(cmd, AddLink):
                self.add_link(cmd.spec)
            elif isinstance(cmd, AddRoute):
                self.add_route(cmd.route)
            elif isinstance(cmd, DelRoute):
                n = self.routing.remove_matching(
                    src_mac=cmd.src_mac, dst_mac=cmd.dst_mac
                )
                if n == 0:
                    raise ValueError(
                        f"{self.name}: no route matches src={cmd.src_mac} "
                        f"dst={cmd.dst_mac}"
                    )
            elif isinstance(cmd, ListCmd):
                if cmd.what == "links":
                    replies.extend(
                        f"link {l.name} {l.proto.value} {l.dst_ip}:{l.dst_port}"
                        for l in self.links.values()
                    )
                elif cmd.what == "routes":
                    replies.extend(
                        f"route src {r.src_mac} dst {r.dst_mac} "
                        f"{r.dest_type.value} {r.dest_name}"
                        for r in self.routing.entries
                    )
                else:
                    replies.extend(
                        f"interface {name} mac {nic.mac}"
                        for name, nic in self.interfaces.items()
                    )
            else:
                raise ValueError(f"{self.name}: unsupported command {cmd!r}")
        return replies
