"""The VNET/P bridge: host-kernel module between core and physical net
(Sect. 4.5).

Transmission modes (selected per packet by the routing directive the core
passes along):

* **encapsulated send** — the guest frame is wrapped in a UDP datagram and
  sent on the bridge's in-kernel socket to the destination VNET/P core,
  VNET/U daemon, or waypoint;
* **direct send** — the raw frame goes straight onto the local physical
  network (overlay exit point).

Reception likewise runs both modes simultaneously: UDP datagrams arriving
on the VNET link port are unwrapped (**encapsulated receive**), and — when
enabled — the host NIC runs promiscuous so frames whose destination MACs
belong to registered interfaces are picked up raw (**direct receive**).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..obs.context import Observability
from ..obs.span import STAGE_BRIDGE_TX, STAGE_DECAP, STAGE_ENCAP
from ..proto.ethernet import BROADCAST_MAC, EthernetFrame
from ..sim import PacketStage, Simulator, Store
from ..sim.pipeline import Port
from .dispatcher import YieldState
from .encap import VnetEncap
from .flowcache import FlowPath
from .overlay import DEFAULT_VNET_PORT, LinkProto, LinkSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..host.machine import Host
    from .core import VnetCore

__all__ = ["VnetBridge"]


def _accept_all(frame) -> bool:
    """Default sink of a per-link egress filter: everything passes."""
    return True


class VnetBridge(PacketStage):
    """Kernel-module bridge between a VNET/P core and the host network."""

    def __init__(
        self,
        sim: Simulator,
        host: "Host",
        core: "VnetCore",
        port: int = DEFAULT_VNET_PORT,
        direct_receive: bool = False,
    ):
        self._init_stage(sim, f"{host.name}.vbridge")
        self.host = host
        self.core = core
        self.costs = host.params.vnet_costs
        self.port = port
        # In-kernel UDP socket for encapsulated send/receive.
        self.sock = host.stack.udp_socket(port, in_kernel=True)
        self.txq: Store = Store(sim, capacity=8192, name=f"{self.name}.txq")
        self._tcp_links: dict[str, object] = {}
        # Per-link egress filter ports: synchronous predicate hand-off
        # points on the encapsulation path, created lazily by link_out().
        self._link_ports: dict[str, "Port"] = {}
        self.obs = Observability.of(sim)
        metrics = self.obs.metrics
        prefix = f"vnet.bridge.{host.name}"
        self._encap_tx = metrics.counter(f"{prefix}.encap_tx")
        self._encap_rx = metrics.counter(f"{prefix}.encap_rx")
        self._direct_tx = metrics.counter(f"{prefix}.direct_tx")
        self._direct_rx = metrics.counter(f"{prefix}.direct_rx")
        if direct_receive:
            host.stack.set_promiscuous(self._promisc_rx)
        core.attach_bridge(self)
        # The bridge's send path parallelizes with the dispatcher count
        # (side-core offload of in-VMM processing beyond dispatch, Fig. 5).
        for i in range(core.tuning.n_dispatchers):
            sim.process(self._tx_loop(), name=f"{self.name}.tx{i}")
        sim.process(self._rx_loop(), name=f"{self.name}.rx")

    # -- counters (registry-backed, read-only views) ----------------------------
    @property
    def encap_tx(self) -> int:
        return self._encap_tx.value

    @property
    def encap_rx(self) -> int:
        return self._encap_rx.value

    @property
    def direct_tx(self) -> int:
        return self._direct_tx.value

    @property
    def direct_rx(self) -> int:
        return self._direct_rx.value

    # -- per-link egress filters -------------------------------------------------
    def link_out(self, link_name: str) -> Port:
        """The egress filter port for one overlay link (lazily created).

        A timing-neutral predicate point on the encapsulation path: the
        port's default sink accepts everything and the clean path costs
        one dict lookup, but chaos injectors
        (:mod:`repro.chaos.stages`) can interpose on it to fault exactly
        one overlay link — the granularity overlay partitions happen at
        — without touching the shared physical NIC.  Drop-family
        injectors only; the sink is consulted mid-generator, so it must
        answer synchronously.
        """
        port = self._link_ports.get(link_name)
        if port is None:
            port = self.make_port(f"link.{link_name}")
            port.connect(_accept_all)
            self._link_ports[link_name] = port
        return port

    # -- transmit ----------------------------------------------------------------
    def _tx_loop(self):
        """Bridge thread: demultiplex on the link and transmit."""
        ystate = YieldState(self.sim, self.core.tuning, base_wakeup_ns=self.costs.idle_wakeup_ns)
        while True:
            blocked = len(self.txq) == 0
            frame, link = yield self.txq.get()
            penalty = ystate.penalty(blocked)
            if blocked:
                penalty += self.host.wakeup_noise_ns()
            ystate.note_work()
            # The wakeup penalty is charged inside _transmit's span so the
            # recorded encap/bridge-tx stage matches the analytic "bridge
            # wakeup + tx + encap" stage.
            yield from self._transmit(frame, link, penalty)

    def _transmit(self, frame: EthernetFrame, link: LinkSpec, penalty: int = 0):
        if link.__class__ is FlowPath:
            yield from self._transmit_fast(frame, link, penalty)
            return
        spans = self.obs.spans
        if link.proto is LinkProto.DIRECT:
            with spans.span(STAGE_BRIDGE_TX, who=self.name, where="host", flow_of=frame):
                yield self.sim.timeout(penalty + self.costs.bridge_tx_ns)
            self._direct_tx.inc()
            yield from self.host.stack.send_raw_frame(frame)
        elif link.proto is LinkProto.UDP:
            with spans.span(STAGE_ENCAP, who=self.name, where="host", flow_of=frame):
                yield self.sim.timeout(
                    penalty + self.costs.bridge_tx_ns + self.costs.encap_ns
                )
            encap = VnetEncap(inner=frame, link_name=link.name)
            if not self.link_out(link.name).push(encap):
                return  # chaos filter dropped the datagram on this link
            self._encap_tx.inc()
            yield from self.sock.sendto(encap, link.dst_ip, link.dst_port)
        elif link.proto is LinkProto.TCP:
            with spans.span(STAGE_ENCAP, who=self.name, where="host", flow_of=frame):
                yield self.sim.timeout(
                    penalty + self.costs.bridge_tx_ns + self.costs.encap_ns
                )
            encap = VnetEncap(inner=frame, link_name=link.name)
            if not self.link_out(link.name).push(encap):
                return  # chaos filter dropped the message on this link
            self._encap_tx.inc()
            channel = yield from self._tcp_link(link)
            yield from channel.send_message(encap, frame.size)
        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unknown link protocol {link.proto}")

    def _transmit_fast(self, frame: EthernetFrame, path: FlowPath,
                       penalty: int = 0):
        """Compiled-flow transmit (see :mod:`repro.vnet.flowcache`).

        Charges exactly what :meth:`_transmit` charges for the same
        link; what it skips — the protocol demux, the ``link_out`` dict
        lookup, re-deriving the encapsulation header fields — is the
        charged-not-performed work the fast path elides.  The pre-bound
        egress filter ``path.port`` is the same persistent
        :class:`~repro.sim.pipeline.Port` chaos injectors rebind, so
        fault windows still see every cached packet.
        """
        spans = self.obs.spans
        if path.proto is LinkProto.DIRECT:
            with spans.span(STAGE_BRIDGE_TX, who=self.name, where="host", flow_of=frame):
                yield self.sim.timeout(penalty + self.costs.bridge_tx_ns)
            self._direct_tx.inc()
            yield from self.host.stack.send_raw_frame(frame)
            return
        with spans.span(STAGE_ENCAP, who=self.name, where="host", flow_of=frame):
            yield self.sim.timeout(
                penalty + self.costs.bridge_tx_ns + self.costs.encap_ns
            )
        encap = VnetEncap(inner=frame, link_name=path.link_name)
        if not path.port.push(encap):
            return  # chaos filter dropped it on this link
        self._encap_tx.inc()
        if path.proto is LinkProto.UDP:
            yield from self.sock.sendto(encap, path.dst_ip, path.dst_port)
        else:  # TCP
            channel = path.channel
            if channel is None:
                channel = yield from self._tcp_link(path.link)
                path.channel = channel
            yield from channel.send_message(encap, frame.size)

    def _tcp_link(self, link: LinkSpec):
        """Generator: lazily establish the TCP stream for a TCP link."""
        channel = self._tcp_links.get(link.name)
        if channel is None:
            from ..proto.tcp import TcpMessageChannel

            conn = yield from self.host.stack.tcp_connect(
                link.dst_ip, link.dst_port, in_kernel=True
            )
            channel = TcpMessageChannel(conn)
            self._tcp_links[link.name] = channel
        return channel

    def accept_tcp_links(self) -> None:
        """Listen for inbound TCP-encapsulated overlay links."""
        listener = self.host.stack.tcp_listen(self.port, in_kernel=True)
        self.sim.process(self._tcp_accept_loop(listener), name=f"{self.name}.tcpaccept")

    def _tcp_accept_loop(self, listener):
        from ..proto.tcp import TcpMessageChannel

        while True:
            conn = yield from listener.accept()
            channel = TcpMessageChannel(conn)
            self.sim.process(self._tcp_rx_loop(channel), name=f"{self.name}.tcprx")

    def _tcp_rx_loop(self, channel):
        while True:
            encap = yield from channel.recv_message()
            with self.obs.spans.span(
                STAGE_DECAP, who=self.name, where="host", flow_of=encap.inner
            ):
                yield self.sim.timeout(self.costs.bridge_rx_ns + self.costs.decap_ns)
            self._encap_rx.inc()
            self.core.inbound.push(encap.inner)

    # -- receive --------------------------------------------------------------------
    def _rx_loop(self):
        """Encapsulated receive: unwrap VNET UDP datagrams."""
        while True:
            payload, _src_ip, _sport = yield from self.sock.recv()
            if not isinstance(payload, VnetEncap):
                continue  # stray traffic on the link port
            with self.obs.spans.span(
                STAGE_DECAP, who=self.name, where="host", flow_of=payload.inner
            ):
                yield self.sim.timeout(self.costs.bridge_rx_ns + self.costs.decap_ns)
            self._encap_rx.inc()
            self.core.inbound.push(payload.inner)

    def _promisc_rx(self, dev, frame: EthernetFrame) -> None:
        """Direct receive: raw frames for MACs the core asked for."""
        if frame.dst in self.core.if_by_mac or frame.dst == BROADCAST_MAC:
            self._direct_rx.inc()
            self.core.inbound.push(frame)
