"""VNET/P routing table with hash-cache fast path (Sect. 4.3).

The table itself is an ordered list scanned linearly (the paper's design);
a hash cache keyed on exact (src, dst) MAC pairs makes the common case a
constant-time lookup.  Lookup *cost* is reported to the caller in
nanoseconds so the dispatcher can charge it on the data path, letting the
routing-cache ablation bench measure the difference.

Cluster-scale tables (``repro.topo`` compiles 1000+-host topologies into
per-host tables with hundreds to thousands of entries) made the *Python*
linear walk the bottleneck even though the *charged* cost already models
it.  Lookups therefore consult a lazily-built index — exact-destination
buckets plus a wildcard-destination list — instead of scanning
``entries``.  Because destination-exact entries always outrank
destination-wildcard ones (see :attr:`RouteEntry.specificity`), checking
the exact bucket first and falling back to the wildcard list preserves
the scan's selection exactly, including first-added-wins tie-breaking
within a bucket.  The **charged** cost is unchanged: a resolving lookup
still pays ``route_table_per_entry_ns`` for every entry in the table
(the paper's design scans the whole list), and the hash cache still
short-circuits warm flows at ``route_cache_hit_ns``.

``entries`` must be mutated through the table API (``add`` / ``remove``
/ ``remove_matching`` / ``clear`` / ``load``): the index and the hash
cache are invalidated from :meth:`RoutingTable._changed`, so out-of-band
list surgery would leave lookups reading stale state.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..config import VnetCostParams
from .overlay import ANY_MAC, DestType, RouteEntry

__all__ = ["RoutingTable", "NoRouteError"]


class NoRouteError(LookupError):
    """No routing entry matches a packet's (src, dst) MAC pair."""


class RoutingTable:
    """Ordered route list + (src, dst) lookup cache."""

    def __init__(self, costs: VnetCostParams, cache_enabled: bool = True):
        self.costs = costs
        self.cache_enabled = cache_enabled
        self.entries: list[RouteEntry] = []
        self._cache: dict[tuple[str, str], RouteEntry] = {}
        # Lazily rebuilt lookup index: exact-dst buckets + wildcard-dst
        # list, both in insertion order.  None = stale (rebuilt on the
        # next lookup), so bulk loads pay one rebuild, not one per entry.
        self._by_dst: Optional[dict[str, list[RouteEntry]]] = None
        self._wild_dst: list[RouteEntry] = []
        self._listeners: list[Callable[[], None]] = []
        self.lookups = 0
        self.cache_hits = 0

    def __len__(self) -> int:
        return len(self.entries)

    def on_change(self, listener: Callable[[], None]) -> None:
        """Register a callback fired after any table mutation.

        Derived caches (the core's per-flow fast path, see
        :mod:`repro.vnet.flowcache`) subscribe here so a route change
        can never leave a stale compiled decision behind.
        """
        self._listeners.append(listener)

    def _changed(self) -> None:
        self._cache.clear()
        self._by_dst = None
        for listener in self._listeners:
            listener()

    def _rebuild_index(self) -> dict[str, list[RouteEntry]]:
        by_dst: dict[str, list[RouteEntry]] = {}
        wild: list[RouteEntry] = []
        for entry in self.entries:
            if entry.dst_mac == ANY_MAC:
                wild.append(entry)
            else:
                by_dst.setdefault(entry.dst_mac, []).append(entry)
        self._by_dst = by_dst
        self._wild_dst = wild
        return by_dst

    def add(self, entry: RouteEntry) -> None:
        if entry in self.entries:
            raise ValueError(f"duplicate route: {entry}")
        self.entries.append(entry)
        self._changed()

    def load(self, entries: Iterable[RouteEntry]) -> int:
        """Bulk-append routes with a single change notification.

        The topology compiler (:mod:`repro.topo.compiler`) installs
        hundreds of routes per host on cluster-scale overlays; loading
        them one :meth:`add` at a time would fire the change listeners —
        and flush every derived cache — per entry, and pay an O(n)
        duplicate scan per entry on top.  ``load`` extends the table in
        one step (callers are trusted not to hand it duplicates; the
        compiler emits each route exactly once) and notifies listeners
        once.  Returns the number of routes added.
        """
        added = list(entries)
        self.entries.extend(added)
        self._changed()
        return len(added)

    def remove(self, entry: RouteEntry) -> None:
        try:
            self.entries.remove(entry)
        except ValueError:
            raise KeyError(f"no such route: {entry}") from None
        self._changed()

    def remove_matching(
        self,
        src_mac: Optional[str] = None,
        dst_mac: Optional[str] = None,
        dest_name: Optional[str] = None,
    ) -> int:
        """Remove routes by field filter; returns count removed."""
        keep = []
        removed = 0
        for e in self.entries:
            if (
                (src_mac is None or e.src_mac == src_mac)
                and (dst_mac is None or e.dst_mac == dst_mac)
                and (dest_name is None or e.dest_name == dest_name)
            ):
                removed += 1
            else:
                keep.append(e)
        self.entries = keep
        self._changed()
        return removed

    def clear(self) -> None:
        self.entries.clear()
        self._changed()

    def warm_lookup_cost(self) -> int:
        """Lookup cost (ns) for a flow this table has already resolved.

        With the hash cache on, that is a constant cache hit; with it
        off, every packet pays the full linear scan.  The per-flow fast
        path charges exactly this in its timing-neutral mode so cached
        and uncached runs stay bit-identical in simulated time.
        """
        if self.cache_enabled:
            return self.costs.route_cache_hit_ns
        return self.costs.route_table_per_entry_ns * max(1, len(self.entries))

    def lookup(self, src_mac: str, dst_mac: str) -> tuple[RouteEntry, int]:
        """Find the best route for (src, dst); returns (entry, lookup_cost_ns).

        Raises :class:`NoRouteError` when nothing matches (the cost of the
        failed scan is attributed to the exception path; callers drop the
        packet).
        """
        self.lookups += 1
        key = (src_mac, dst_mac)
        if self.cache_enabled:
            hit = self._cache.get(key)
            if hit is not None:
                self.cache_hits += 1
                return hit, self.costs.route_cache_hit_ns
        # Indexed selection, linear-scan semantics: dst-exact entries
        # (specificity >= 2) always beat dst-wildcard ones (<= 1), so the
        # exact bucket is conclusive when it matches; within a bucket,
        # insertion order + strict '>' preserves first-added-wins ties.
        by_dst = self._by_dst
        if by_dst is None:
            by_dst = self._rebuild_index()
        best: Optional[RouteEntry] = None
        for entry in by_dst.get(dst_mac, ()):
            if entry.src_mac in (ANY_MAC, src_mac) and (
                best is None or entry.specificity > best.specificity
            ):
                best = entry
        if best is None:
            for entry in self._wild_dst:
                if entry.src_mac in (ANY_MAC, src_mac) and (
                    best is None or entry.specificity > best.specificity
                ):
                    best = entry
        # Charged cost models the paper's full linear walk over the table,
        # exactly as before the index existed (the scan never broke early).
        cost = self.costs.route_table_per_entry_ns * max(1, len(self.entries))
        if best is None:
            raise NoRouteError(f"no route for src={src_mac} dst={dst_mac}")
        if self.cache_enabled:
            self._cache[key] = best
        return best, cost

    def peek(self, src_mac: str, dst_mac: str) -> Optional[RouteEntry]:
        """Side-effect-free best-match query (no counters, no cache fill).

        Control-plane consumers — the fluid path compiler in
        :mod:`repro.vnet.fluidpath` — must not perturb the datapath's
        lookup statistics or warm its cache, or an otherwise identical
        packet-level segment would see different charged costs.
        """
        by_dst = self._by_dst
        if by_dst is None:
            by_dst = self._rebuild_index()
        best: Optional[RouteEntry] = None
        for entry in by_dst.get(dst_mac, ()):
            if entry.src_mac in (ANY_MAC, src_mac) and (
                best is None or entry.specificity > best.specificity
            ):
                best = entry
        if best is None:
            for entry in self._wild_dst:
                if entry.src_mac in (ANY_MAC, src_mac) and (
                    best is None or entry.specificity > best.specificity
                ):
                    best = entry
        return best

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.lookups if self.lookups else 0.0

    def routes_to(self, dest_type: DestType, dest_name: str) -> list[RouteEntry]:
        return [
            e
            for e in self.entries
            if e.dest_type is dest_type and e.dest_name == dest_name
        ]
