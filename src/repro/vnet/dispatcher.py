"""Packet-dispatch support: adaptive mode control and yield strategies.

* :class:`ModeController` implements the Fig. 6 algorithm: per virtual
  NIC, estimate the packet arrival rate over a window and switch between
  guest-driven and VMM-driven modes with hysteresis
  (``alpha_l < alpha_u`` so the controller does not flap).
* :func:`wake_penalty` models the yield strategies of Sect. 4.8 as the
  *scheduling latency* a poll loop pays when work arrives while it is
  yielded: zero for immediate yield, half a sleep quantum on average for
  timed yield, and adaptive in between.  (Implemented as a penalty on
  wakeup rather than as live polling timers so an idle simulation
  quiesces.)
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..config import VnetMode, VnetTuning, YieldStrategy
from ..obs.context import Observability
from ..sim import Signal, Simulator
from ..units import SECOND

if TYPE_CHECKING:  # pragma: no cover
    from ..palacios.virtio import VirtioNIC

__all__ = ["ModeController", "YieldState", "wake_penalty"]


class ModeController:
    """Per-NIC guest-driven/VMM-driven mode selection (Fig. 6)."""

    def __init__(self, sim: Simulator, nic: "VirtioNIC", tuning: VnetTuning):
        self.sim = sim
        self.nic = nic
        self.tuning = tuning
        self.adaptive = tuning.mode is VnetMode.ADAPTIVE
        # Adaptive operation starts in guest-driven mode (low-rate optimum).
        self.mode = VnetMode.GUEST_DRIVEN if self.adaptive else tuning.mode
        self.mode_changed = Signal(sim, f"{nic.name}.modechg")
        # Synchronous observers of mode switches (the Signal above wakes
        # waiting processes on the *next* kernel round; the fluid fast
        # path needs the exact switch instant to de-escalate).
        self.on_switch: list = []
        metrics = Observability.of(sim).metrics
        self._switches = metrics.counter(f"vnet.mode.{nic.name}.switches")
        # Gauge mirrors the current mode for snapshots: 0 = guest-driven,
        # 1 = VMM-driven.
        self._mode_gauge = metrics.gauge(f"vnet.mode.{nic.name}.vmm_driven")
        self._window_start = sim.now
        self._packets = 0
        self._apply()

    @property
    def switches(self) -> int:
        return self._switches.value

    def _apply(self) -> None:
        # In VMM-driven mode a dispatcher thread polls the TXQ, so guest
        # kicks are suppressed (virtio no-notify flag).
        self.nic.suppress_kicks = self.mode is VnetMode.VMM_DRIVEN
        self._mode_gauge.set(1 if self.mode is VnetMode.VMM_DRIVEN else 0)

    def note_packet(self, n: int = 1) -> None:
        """Record packet arrivals to/from the NIC; recompute rate lazily."""
        if not self.adaptive:
            return
        self._packets += n
        elapsed = self.sim.now - self._window_start
        if elapsed < self.tuning.window_ns:
            return
        rate = self._packets * SECOND / elapsed   # packets per second
        self._packets = 0
        self._window_start = self.sim.now
        if rate > self.tuning.alpha_u and self.mode is VnetMode.GUEST_DRIVEN:
            self._switch(VnetMode.VMM_DRIVEN)
        elif rate < self.tuning.alpha_l and self.mode is VnetMode.VMM_DRIVEN:
            self._switch(VnetMode.GUEST_DRIVEN)
        # Rates between the bounds leave the mode unchanged (hysteresis).

    def _switch(self, mode: VnetMode) -> None:
        self.mode = mode
        self._switches.inc()
        self._apply()
        for callback in self.on_switch:
            callback(mode)
        self.mode_changed.fire(mode)


class YieldState:
    """Tracks when a poll loop last found work, for the adaptive strategy.

    ``base_wakeup_ns`` is the cost of waking the thread at all when work
    arrives while it is idle (IPI, scheduler, cache warm-up); the yield
    strategy adds its own latency on top.  Both vanish under streaming
    load, where the loop never goes idle.
    """

    def __init__(self, sim: Simulator, tuning: VnetTuning, base_wakeup_ns: int = 0):
        self.sim = sim
        self.tuning = tuning
        self.base_wakeup_ns = base_wakeup_ns
        self.last_work_ns = sim.now

    def note_work(self) -> None:
        self.last_work_ns = self.sim.now

    def note_work_at(self, when_ns: int) -> None:
        """Record work found at a known (future) instant.

        The merged-charge fast paths collapse wakeup penalty and
        dispatch charge into a single timeout; this keeps the adaptive
        strategy's idle clock at the exact instant the work *would* have
        been noted on the unmerged chain.  ``last_work_ns`` is only read
        at the next blocked wakeup, which is always later still.
        """
        self.last_work_ns = when_ns

    def penalty(self, was_blocked: bool) -> int:
        if not was_blocked:
            return 0
        return self.base_wakeup_ns + wake_penalty(
            self.tuning.yield_strategy,
            self.tuning,
            was_blocked,
            idle_ns=self.sim.now - self.last_work_ns,
        )


def wake_penalty(
    strategy: YieldStrategy,
    tuning: VnetTuning,
    was_blocked: bool,
    idle_ns: int = 0,
) -> int:
    """Scheduling latency charged when a poll loop wakes with new work."""
    if not was_blocked:
        return 0
    if strategy is YieldStrategy.IMMEDIATE:
        return 0
    if strategy is YieldStrategy.TIMED:
        return tuning.t_sleep_ns // 2
    # Adaptive: immediate while recently busy, timed once idle beyond the
    # no-work threshold.
    if idle_ns <= tuning.t_nowork_ns:
        return 0
    return tuning.t_sleep_ns // 2
