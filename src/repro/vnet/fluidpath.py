"""VNET/P path compilation for the hybrid fluid/packet fast path.

:mod:`repro.sim.fluid` is overlay-agnostic: the region only needs, per
captured flow, (a) the set of overlay links the flow traverses — as the
same ``<host>.vbridge.link.<link>`` tokens the chaos injector names, so
fault installs release exactly the right flows — and (b) a ``charge``
hook that applies aggregate per-hop counter updates for a stride's worth
of segments.  This module supplies both by walking the registered cores'
routing tables (via the side-effect-free :meth:`RoutingTable.peek`, so
compilation never perturbs datapath lookup statistics) from the sender's
guest NIC to the receiver's, in both directions: data segments ride the
forward path, their ACKs the reverse.

The walk mirrors ``VnetCore._forward``: an INTERFACE entry terminates at
a local guest NIC; a LINK entry crosses the bridge to the core of the
host owning the link's destination IP.  Compilation fails (returns
``None``, vetoing the capture) on broadcast frames, missing routes,
unknown next hops, or suspiciously long walks — exactly the flows the
packet path must keep handling.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..sim.fluid import FluidRegion
from .overlay import DestType

if TYPE_CHECKING:  # pragma: no cover
    from ..palacios.virtio import VirtioNIC
    from ..proto.tcp import TcpConnection
    from .core import VnetCore

__all__ = ["VnetFluidPath", "compile_vnet_path", "install_fluid"]


def install_fluid(sim, core: "VnetCore") -> FluidRegion:
    """Attach ``core`` to the simulator's fluid region (creating it)."""
    region = FluidRegion.ensure(sim, core.tuning)
    if region.compile_path is None:
        region.compile_path = compile_vnet_path
    region.add_core(core)
    return region


class _Hops:
    """One direction of a compiled flow path."""

    __slots__ = ("src_nic", "first_core", "links", "dst_core", "dst_nic",
                 "src_ctl", "dst_ctl")

    def __init__(self, src_nic: "VirtioNIC", first_core: "VnetCore",
                 links: list, dst_core: "VnetCore", dst_nic: "VirtioNIC"):
        self.src_nic = src_nic
        self.first_core = first_core
        # [(core, link, next_core), ...] — overlay crossings in order.
        self.links = links
        self.dst_core = dst_core
        self.dst_nic = dst_nic
        self.src_ctl = _controller_of(first_core, src_nic)
        self.dst_ctl = _controller_of(dst_core, dst_nic)

    def charge(self, segs: int) -> None:
        """Counter updates one packet-level traversal × ``segs`` would make."""
        self.src_nic._tx_packets.inc(segs)
        self.first_core._pkts_from_guest.inc(segs)
        for core, _link, nxt in self.links:
            core._pkts_to_bridge.inc(segs)
            core.host.nic._tx_frames.inc(segs)
            nxt.host.nic._rx_frames.inc(segs)
        self.dst_core._pkts_to_guest.inc(segs)
        self.dst_nic._rx_packets.inc(segs)
        # Feed the adaptive mode controllers exactly as the packet path
        # would (tx dispatch on the source NIC, guest delivery on the
        # destination): the Fig. 6 rate estimate must keep seeing the
        # modeled traffic or a fluid flow would freeze mode selection.
        # A switch fired here re-enters the region via on_mode_switch and
        # releases the flows at this precise instant.
        if self.src_ctl is not None:
            self.src_ctl.note_packet(segs)
        if self.dst_ctl is not None:
            self.dst_ctl.note_packet(segs)


def _controller_of(core: "VnetCore", nic: "VirtioNIC"):
    for name, inic in core.interfaces.items():
        if inic is nic:
            return core.controllers.get(name)
    return None


class VnetFluidPath:
    """Both directions of a captured flow, plus the fault-match tokens."""

    __slots__ = ("fwd", "rev", "link_tokens")

    def __init__(self, fwd: _Hops, rev: _Hops):
        self.fwd = fwd
        self.rev = rev
        tokens = set()
        for hops in (fwd, rev):
            for core, link, _nxt in hops.links:
                # The exact port name flowcache.invalidate_for_fault and
                # the chaos injector use for this overlay crossing.
                tokens.add(f"{core.host.name}.vbridge.link.{link.name}")
        self.link_tokens = frozenset(tokens)

    def charge(self, data_segs: int, ack_segs: int) -> None:
        if data_segs:
            self.fwd.charge(data_segs)
        if ack_segs:
            self.rev.charge(ack_segs)


def _core_of_mac(region: FluidRegion, mac: str) -> Optional["VnetCore"]:
    for core in region.cores:
        if mac in core.if_by_mac:
            return core
    return None


def _core_of_host_ip(region: FluidRegion, ip: str) -> Optional["VnetCore"]:
    for core in region.cores:
        if core.host.ip == ip:
            return core
    return None


def _walk(region: FluidRegion, conn: "TcpConnection") -> Optional[_Hops]:
    try:
        dev, dst_mac = conn.stack.route(conn.remote_ip)
    except Exception:
        return None
    src_mac = dev.mac
    core = _core_of_mac(region, src_mac)
    if core is None:
        return None
    src_nic = core.if_by_mac[src_mac]
    first_core = core
    links: list = []
    for _hop in range(FluidRegion.MAX_HOPS):
        local = core.if_by_mac.get(dst_mac)
        if local is not None:
            return _Hops(src_nic, first_core, links, core, local)
        entry = core.routing.peek(src_mac, dst_mac)
        if entry is None:
            return None
        if entry.dest_type is DestType.INTERFACE:
            nic = core.interfaces.get(entry.dest_name)
            if nic is None:
                return None
            return _Hops(src_nic, first_core, links, core, nic)
        link = core.links.get(entry.dest_name)
        if link is None:
            return None
        nxt = _core_of_host_ip(region, link.dst_ip)
        if nxt is None:
            return None
        links.append((core, link, nxt))
        core = nxt
    return None  # routing loop — leave the flow at packet level


def compile_vnet_path(
    region: FluidRegion, conn: "TcpConnection"
) -> Optional[VnetFluidPath]:
    """Compile a captured connection's overlay path, or veto the capture."""
    if conn.peer is None:
        return None
    fwd = _walk(region, conn)
    if fwd is None:
        return None
    rev = _walk(region, conn.peer)
    if rev is None:
        return None
    return VnetFluidPath(fwd, rev)
