"""VM migration over the overlay (the VNET model's location independence).

The second VNET requirement (Sect. 3): VMs can be "migrated between
networks and from site to site, while maintaining their connectivity,
without requiring any within-VM configuration changes".  The guest
keeps its MAC and IP; what moves is the *overlay attachment*: the
virtual NIC unregisters from the source core, the VM's memory is
shipped, the NIC registers with the destination core, and every core's
routing is rewritten so the guest's MAC now points at the new host.

In-flight packets addressed to the old location are dropped during the
blackout, exactly as in a real pre-copy migration's stop-and-copy
phase; transports recover (TCP retransmits, applications retry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .. import units
from ..sim import Simulator
from .overlay import DEFAULT_VNET_PORT, DestType, InterfaceSpec, LinkProto, LinkSpec, RouteEntry

if TYPE_CHECKING:  # pragma: no cover
    from ..palacios.virtio import VirtioNIC
    from ..palacios.vmm import VirtualMachine
    from .core import VnetCore

__all__ = ["MigrationResult", "migrate_vm"]


@dataclass
class MigrationResult:
    """Timing record of one migration."""

    vm_name: str
    src_core: str
    dst_core: str
    started_ns: int
    blackout_ns: int
    finished_ns: int


def _route_all_cores_to(
    cores: list["VnetCore"], mac: str, dst_idx: int, if_name: str
) -> None:
    """Point every core's route for ``mac`` at its new location."""
    dst_host_ip = cores[dst_idx].host.ip
    for i, core in enumerate(cores):
        core.routing.remove_matching(dst_mac=mac)
        if i == dst_idx:
            core.add_route(
                RouteEntry("any", mac, DestType.INTERFACE, if_name)
            )
            continue
        link_name = None
        for name, link in core.links.items():
            if link.proto is LinkProto.UDP and link.dst_ip == dst_host_ip:
                link_name = name
                break
        if link_name is None:
            link_name = f"mig-{dst_idx}"
            core.add_link(
                LinkSpec(
                    name=link_name,
                    proto=LinkProto.UDP,
                    dst_ip=dst_host_ip,
                    dst_port=DEFAULT_VNET_PORT,
                )
            )
        core.add_route(RouteEntry("any", mac, DestType.LINK, link_name))


def migrate_vm(
    sim: Simulator,
    cores: list["VnetCore"],
    vm: "VirtualMachine",
    nic: "VirtioNIC",
    src_idx: int,
    dst_idx: int,
    if_name: str = "if0",
    dst_if_name: Optional[str] = None,
    migration_bw_Bps: float = 1.0e9,
    stop_copy_fraction: float = 0.08,
):
    """Generator: migrate ``vm`` from ``cores[src_idx]`` to ``cores[dst_idx]``.

    Models a pre-copy live migration: most memory transfers while the VM
    runs; connectivity blacks out only for the stop-and-copy fraction.
    Returns a :class:`MigrationResult`.
    """
    if src_idx == dst_idx:
        raise ValueError("source and destination cores are the same")
    src, dst = cores[src_idx], cores[dst_idx]
    if src.interfaces.get(if_name) is not nic:
        raise ValueError(f"{if_name!r} on {src.name} is not the given NIC")
    # The destination host typically already has an "if0"; give the
    # arriving VM's interface a distinct name there.
    dst_if_name = dst_if_name or f"{if_name}-{vm.name}"
    started = sim.now
    mem_bytes = vm.mem_mb * units.MIB
    precopy_ns = int(mem_bytes * (1 - stop_copy_fraction) / migration_bw_Bps * units.SECOND)
    blackout_ns = int(mem_bytes * stop_copy_fraction / migration_bw_Bps * units.SECOND)

    # Pre-copy phase: the VM keeps running and communicating.
    yield sim.timeout(precopy_ns)

    # Stop-and-copy: detach from the source overlay; packets to this MAC
    # now drop (no-route) until reattachment.
    src.routing.remove_matching(dst_mac=nic.mac)
    src.remove_interface(if_name)
    yield sim.timeout(blackout_ns)

    # Reattach at the destination and fix up routing everywhere.
    dst.register_interface(InterfaceSpec(name=dst_if_name, mac=nic.mac), nic)
    _route_all_cores_to(cores, nic.mac, dst_idx, dst_if_name)
    return MigrationResult(
        vm_name=vm.name,
        src_core=src.name,
        dst_core=dst.name,
        started_ns=started,
        blackout_ns=blackout_ns,
        finished_ns=sim.now,
    )
