"""Per-flow fast-path cache in front of VNET/P routing (ONCache-style).

ONCache (PAPERS.md) closes most of the container-overlay gap to native
with one observation: after a flow's *first* packet has walked the full
lookup/encapsulation stack, every later packet repeats exactly the same
decisions.  This module applies that idea to the :class:`~repro.vnet.core.VnetCore`
datapath.  The first packet of a flow — keyed on the slotted PDU's flow
id, the ``(src MAC, dst MAC)`` pair every descriptor carries — walks the
full :class:`~repro.sim.pipeline.PacketStage` chain (dispatch span,
routing-table lookup, link/interface resolution, per-packet
encapsulation demux) and the core *compiles* the outcome into a
:class:`FlowCacheEntry`: the resolved :class:`~repro.vnet.overlay.RouteEntry`,
the destination virtio NIC **or** a :class:`FlowPath` with the overlay
link, its pre-bound encapsulation header template (link name, destination
IP, destination port) and the pre-resolved per-link egress filter port.
Subsequent packets take the cached chain, which charges only the
fast-path cost and skips the Python-level work.

Two cost models, selected by :class:`~repro.config.VnetTuning`:

* **timing-neutral** (``flow_cache_hit_ns=None``, the default) — a hit
  charges exactly what the full chain would have charged for a warm
  flow: ``dispatch_ns`` plus the routing table's warm lookup cost
  (:meth:`~repro.vnet.routing.RoutingTable.warm_lookup_cost`).  Simulated
  observables stay **bit-identical** with the cache on or off (the
  golden fig8/fig9 scenarios enforce this); what the cache elides is
  charged-not-performed work — wall-clock only, like the kernel fast
  paths in ``repro.sim``.
* **modelled** (``flow_cache_hit_ns=<ns>``) — a hit charges the given
  fixed cost instead, modelling ONCache's measured per-packet saving.
  This intentionally changes simulated time and is for ablation
  experiments, never for the golden scenarios.

Invalidation rules (a cached route must never outlive its inputs):

1. **route-table change** — any add/remove/clear on the owning core's
   :class:`~repro.vnet.routing.RoutingTable` fires its change listeners
   and flushes the whole cache (reason ``route-change``);
2. **failover / failback** — :meth:`repro.vnet.adaptation.AdaptationEngine.failover`
   and its failback pass invalidate explicitly (reasons ``failover`` /
   ``failback``), in addition to the route-change flush their rewiring
   already triggers, so the audit trail names the cause;
3. **liveness verdicts** — :meth:`repro.vnet.monitor.TrafficMonitor.dead_links`
   drops the entries riding a link the phi detector just declared dead
   (reason ``link-dead``);
4. **chaos faults** — :class:`repro.chaos.FaultSchedule` calls
   :func:`invalidate_for_fault` when a partition/flap/pause/loss window
   installs or a flap goes down (reason ``chaos``): entries through the
   faulted overlay link are dropped, or the whole cache when the fault
   sits below link granularity (a NIC or switch port).

All invalidation is timing-free (dict clears; no simulated events), so
every rule is observable-neutral under the timing-neutral cost model:
the next packet of an affected flow simply re-walks the full chain.

Metrics live under ``vnet.flowcache.<host>.*`` (hits, misses, installs,
invalidated entries, per-reason invalidation events, entry-count gauge);
:meth:`FlowCache.register_hit_rate` adds a per-window hit-rate series to
an :class:`~repro.obs.timeline.Timeline`.  The performance model — and
where each charged nanosecond goes — is documented in
``docs/performance.md``.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

from ..obs.context import Observability
from ..sim import PacketStage, Simulator
from ..sim.fluid import fluid_region_of
from .overlay import DestType, LinkProto, LinkSpec, RouteEntry

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.timeline import Series, Timeline
    from ..palacios.virtio import VirtioNIC
    from ..sim.pipeline import Port
    from .core import VnetCore

__all__ = [
    "FlowCache",
    "FlowCacheEntry",
    "FlowPath",
    "caches_of",
    "invalidate_for_fault",
]

# Attribute on the per-simulator Observability context that carries the
# registry of live FlowCaches (one per VnetCore); chaos schedules use it
# to reach every cache without the cores knowing about chaos.
_REGISTRY_ATTR = "_flow_caches"


def caches_of(sim: Simulator) -> list["FlowCache"]:
    """Every live :class:`FlowCache` of ``sim`` (registered at build time)."""
    obs = Observability.of(sim)
    caches = getattr(obs, _REGISTRY_ATTR, None)
    if caches is None:
        caches = []
        setattr(obs, _REGISTRY_ATTR, caches)
    return caches


class FlowPath:
    """The compiled bridge-side fast path of one cached link flow.

    Pre-binds everything :meth:`repro.vnet.bridge.VnetBridge._transmit`
    would otherwise re-derive per packet: the transport protocol, the
    encapsulation header template (link name + destination ``ip:port``)
    and the per-link egress filter port.  ``channel`` caches the lazily
    established TCP stream for :class:`~repro.vnet.overlay.LinkProto.TCP`
    links.  Rides the bridge TX queue in place of the
    :class:`~repro.vnet.overlay.LinkSpec`; the bridge recognises it by
    class and takes :meth:`~repro.vnet.bridge.VnetBridge._transmit_fast`.
    """

    __slots__ = ("link", "proto", "link_name", "dst_ip", "dst_port", "port",
                 "channel")

    def __init__(self, link: LinkSpec, port: Optional["Port"]):
        self.link = link
        self.proto = link.proto
        # The pre-bound encap header template: what VnetEncap + sendto
        # need, resolved once at install time.
        self.link_name = link.name
        self.dst_ip = link.dst_ip
        self.dst_port = link.dst_port
        self.port = port              # per-link egress filter (UDP/TCP links)
        self.channel = None           # lazily bound TcpMessageChannel

    @property
    def name(self) -> str:
        """Link name (parity with ``LinkSpec`` for diagnostics)."""
        return self.link_name


class FlowCacheEntry:
    """One compiled flow: route plus pre-resolved destination.

    Exactly one of ``nic`` (local interface delivery) and ``path``
    (overlay link via the bridge) is set.  ``charge_ns`` is the virtual
    time a cached hit charges inside the dispatch span — under the
    timing-neutral model, precisely what the full chain would have
    charged for this already-resolved flow.
    """

    __slots__ = ("src", "dst", "route", "nic", "path", "charge_ns", "hits",
                 "installed_ns")

    def __init__(self, src: str, dst: str, route: RouteEntry,
                 nic: Optional["VirtioNIC"], path: Optional[FlowPath],
                 charge_ns: int, installed_ns: int):
        self.src = src
        self.dst = dst
        self.route = route
        self.nic = nic
        self.path = path
        self.charge_ns = charge_ns
        self.hits = 0
        self.installed_ns = installed_ns


class FlowCache(PacketStage):
    """Per-core flow cache: (src, dst) flow id -> compiled fast path.

    Sits in front of the core's routing stage; the core consults it with
    :meth:`lookup` before paying for dispatch, and :meth:`install`\\ s the
    compiled entry after a successful full walk.  Install failures (an
    unresolvable destination, a link protocol the fast path does not
    compile) are silent: the flow simply keeps taking the full chain.
    """

    def __init__(self, sim: Simulator, core: "VnetCore"):
        self._init_stage(sim, f"{core.host.name}.vnet.flowcache")
        self.core = core
        self.entries: dict[tuple[str, str], FlowCacheEntry] = {}
        self.obs = Observability.of(sim)
        metrics = self.obs.metrics
        prefix = f"vnet.flowcache.{core.host.name}"
        self._hits = metrics.counter(f"{prefix}.hits")
        self._misses = metrics.counter(f"{prefix}.misses")
        self._installs = metrics.counter(f"{prefix}.installs")
        self._invalidated = metrics.counter(f"{prefix}.invalidated_entries")
        self._invalidations = metrics.labeled(f"{prefix}.invalidations")
        self._entries_gauge = metrics.gauge(f"{prefix}.entries")
        caches_of(sim).append(self)
        # Rule 1: any route-table mutation flushes the compiled flows.
        core.routing.on_change(self._on_route_change)

    # -- statistics (registry-backed, read-only views) --------------------
    @property
    def hits(self) -> int:
        """Cached-chain packets served."""
        return self._hits.value

    @property
    def misses(self) -> int:
        """Packets that walked the full chain (cold or just-invalidated)."""
        return self._misses.value

    @property
    def installs(self) -> int:
        """Entries compiled from full-chain walks."""
        return self._installs.value

    @property
    def invalidated_entries(self) -> int:
        """Entries dropped by invalidation, all reasons."""
        return self._invalidated.value

    @property
    def hit_rate(self) -> float:
        """Lifetime hit fraction over all cache consultations."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self.entries)

    # -- the datapath face -------------------------------------------------
    def lookup(self, src: str, dst: str) -> Optional[FlowCacheEntry]:
        """The per-packet consultation: a compiled entry, or ``None``."""
        entry = self.entries.get((src, dst))
        if entry is None:
            self._misses.inc()
            return None
        self._hits.inc()
        entry.hits += 1
        return entry

    def install(self, src: str, dst: str, route: RouteEntry) -> Optional[FlowCacheEntry]:
        """Compile ``route`` into a fast-path entry for flow ``(src, dst)``.

        Called by the core right after a successful full-chain lookup.
        Returns the entry, or ``None`` when the destination cannot be
        compiled (unknown name, no bridge attached) — never raises on
        the datapath.
        """
        core = self.core
        nic = None
        path = None
        if route.dest_type is DestType.INTERFACE:
            nic = core.interfaces.get(route.dest_name)
            if nic is None:
                return None
        else:
            link = core.links.get(route.dest_name)
            if link is None or core.bridge is None:
                return None
            port = (core.bridge.link_out(link.name)
                    if link.proto is not LinkProto.DIRECT else None)
            path = FlowPath(link, port)
        tuning = core.tuning
        if tuning.flow_cache_hit_ns is not None:
            charge = int(tuning.flow_cache_hit_ns)
        else:
            # Timing-neutral: what the full chain charges once the flow
            # is resolved (dispatch + warm routing lookup).
            charge = core.costs.dispatch_ns + core.routing.warm_lookup_cost()
        entry = FlowCacheEntry(src, dst, route, nic, path, charge,
                               installed_ns=self.sim.now)
        self.entries[(src, dst)] = entry
        self._installs.inc()
        self._entries_gauge.set(len(self.entries))
        return entry

    # -- invalidation ------------------------------------------------------
    def invalidate_all(self, reason: str) -> int:
        """Drop every entry; returns the number dropped."""
        dropped = len(self.entries)
        if dropped:
            self.entries.clear()
            self._invalidated.inc(dropped)
            self._entries_gauge.set(0)
        self._invalidations.inc(reason)
        return dropped

    def invalidate_link(self, link_name: str, reason: str) -> int:
        """Drop the entries whose fast path rides ``link_name``."""
        stale = [key for key, e in self.entries.items()
                 if e.path is not None and e.path.link_name == link_name]
        for key in stale:
            del self.entries[key]
        if stale:
            self._invalidated.inc(len(stale))
            self._entries_gauge.set(len(self.entries))
        self._invalidations.inc(reason)
        return len(stale)

    def invalidate_flow(self, src: str, dst: str, reason: str) -> int:
        """Drop one flow's entry (0 or 1 entries)."""
        entry = self.entries.pop((src, dst), None)
        if entry is None:
            return 0
        self._invalidated.inc()
        self._entries_gauge.set(len(self.entries))
        self._invalidations.inc(reason)
        return 1

    def _on_route_change(self) -> None:
        self.invalidate_all("route-change")

    # -- observability -----------------------------------------------------
    def register_hit_rate(self, timeline: "Timeline",
                          series: Optional[str] = None) -> "Series":
        """Add a per-window hit-rate series (NaN for idle windows)."""
        hits, misses = self._hits, self._misses
        state = [0, 0]

        def sample(now_ns: int) -> float:
            dh = hits.value - state[0]
            dm = misses.value - state[1]
            state[0] = hits.value
            state[1] = misses.value
            total = dh + dm
            return dh / total if total else math.nan

        name = series or f"vnet.flowcache.{self.core.host.name}.hit_rate"
        return timeline.record(name, sample, unit="ratio")

    def stats(self) -> dict:
        """Operational counters, control-interface style."""
        return {
            "entries": len(self.entries),
            "hits": self.hits,
            "misses": self.misses,
            "installs": self.installs,
            "invalidated_entries": self.invalidated_entries,
            "hit_rate": self.hit_rate,
        }


def invalidate_for_fault(sim: Simulator, port_name: str) -> int:
    """Chaos hook: flush cached flows a just-installed fault could strand.

    ``port_name`` identifies where the injector sits.  Per-overlay-link
    egress filters (``<host>.vbridge.link.<link>``) invalidate exactly
    that link's entries on that host's cache; any other placement (a
    physical NIC, a switch port, a core inbound port) is below link
    granularity, so every cache on the simulator is flushed outright.
    Timing-free either way — under the neutral cost model the observable
    schedule is unchanged.  Returns total entries dropped.
    """
    dropped = 0
    marker = ".vbridge.link."
    if marker in port_name:
        host, link = port_name.split(marker, 1)
        for cache in caches_of(sim):
            if cache.core.host.name == host:
                dropped += cache.invalidate_link(link, reason="chaos")
    else:
        for cache in caches_of(sim):
            dropped += cache.invalidate_all("chaos")
    # The fluid fast path de-escalates at the same instant, for the same
    # reason: a fault on the path invalidates the analytic model just as
    # it invalidates a compiled forwarding decision.
    region = fluid_region_of(sim)
    if region is not None:
        region.deescalate_port(port_name, "chaos")
    return dropped
