"""Application-topology inference from overlay traffic (Sect. 3, item 1).

The Virtuoso stack's VTTIF component demonstrated that the VNET layer
can infer "the topology and traffic load of parallel programs" without
any guest cooperation, purely from the traffic it carries; VADAPT then
matches the overlay to that topology.  This module reproduces the
inference: given the aggregated traffic matrix from the
:class:`~repro.vnet.monitor.TrafficMonitor`s, normalise it, threshold
away noise, and classify the application's communication pattern.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from .monitor import TrafficMonitor

__all__ = ["Topology", "InferredTopology", "aggregate_matrix", "infer_topology"]


class Topology(enum.Enum):
    """Communication patterns VTTIF-style inference distinguishes."""

    NONE = "none"                 # no significant traffic
    PAIR = "pair"                 # a single dominant flow pair
    RING = "ring"                 # each node talks to ~2 neighbours, cyclic
    STAR = "star"                 # one hub exchanges with all others
    ALL_TO_ALL = "all-to-all"     # dense matrix
    IRREGULAR = "irregular"       # none of the above


@dataclass
class InferredTopology:
    """Classification result with the supporting evidence."""

    topology: Topology
    nodes: list[str]              # MACs, in matrix order
    matrix: np.ndarray            # normalised traffic fractions
    density: float                # fraction of possible edges carrying traffic

    def describe(self) -> str:
        return (
            f"{self.topology.value} over {len(self.nodes)} endpoints "
            f"(edge density {self.density:.0%})"
        )


def aggregate_matrix(
    monitors: Iterable[TrafficMonitor],
    threshold: float = 0.02,
) -> tuple[list[str], np.ndarray]:
    """Merge per-core traffic matrices into one normalised adjacency matrix.

    Entries below ``threshold`` (as a fraction of the largest flow) are
    treated as control noise and zeroed, as VTTIF does.
    """
    totals: dict[tuple[str, str], int] = {}
    for monitor in monitors:
        for (src, dst), nbytes in monitor.matrix().items():
            totals[(src, dst)] = totals.get((src, dst), 0) + nbytes
    nodes = sorted({mac for pair in totals for mac in pair})
    index = {mac: i for i, mac in enumerate(nodes)}
    matrix = np.zeros((len(nodes), len(nodes)))
    for (src, dst), nbytes in totals.items():
        matrix[index[src], index[dst]] = nbytes
    if matrix.size and matrix.max() > 0:
        matrix = matrix / matrix.max()
        matrix[matrix < threshold] = 0.0
    return nodes, matrix


def infer_topology(
    monitors: Iterable[TrafficMonitor],
    threshold: float = 0.02,
) -> InferredTopology:
    """Classify the application's communication pattern."""
    nodes, matrix = aggregate_matrix(monitors, threshold)
    n = len(nodes)
    if n == 0 or matrix.size == 0 or matrix.max() == 0:
        return InferredTopology(Topology.NONE, nodes, matrix, 0.0)
    adj = matrix > 0
    possible = n * (n - 1)
    density = adj.sum() / possible if possible else 0.0
    out_deg = adj.sum(axis=1)
    in_deg = adj.sum(axis=0)

    topology = Topology.IRREGULAR
    if n == 2 or (adj.sum() <= 2 and (out_deg > 0).sum() <= 2):
        topology = Topology.PAIR
    elif density >= 0.9:
        topology = Topology.ALL_TO_ALL
    elif _is_ring(adj):
        topology = Topology.RING
    elif _is_star(adj, out_deg, in_deg):
        topology = Topology.STAR
    return InferredTopology(topology, nodes, matrix, float(density))


def _is_ring(adj: np.ndarray) -> bool:
    """Every node sends to exactly 1-2 peers and the graph is one cycle."""
    n = len(adj)
    if n < 3:
        return False
    sym = adj | adj.T
    deg = sym.sum(axis=1)
    if not np.all((deg >= 1) & (deg <= 2)) or not np.all(deg == 2):
        return False
    # Walk the cycle: it must visit every node.
    visited = {0}
    prev, cur = None, 0
    for _ in range(n):
        neighbours = [j for j in range(n) if sym[cur, j] and j != prev]
        if not neighbours:
            return False
        prev, cur = cur, neighbours[0]
        if cur == 0:
            break
        visited.add(cur)
    return len(visited) == n


def _is_star(adj: np.ndarray, out_deg: np.ndarray, in_deg: np.ndarray) -> bool:
    """One hub exchanging with everyone; leaves talk only to the hub."""
    n = len(adj)
    if n < 3:
        return False
    total_deg = out_deg + in_deg
    hub = int(np.argmax(total_deg))
    sym = adj | adj.T
    if not all(sym[hub, j] for j in range(n) if j != hub):
        return False
    for j in range(n):
        if j == hub:
            continue
        peers = {k for k in range(n) if sym[j, k]}
        if peers - {hub}:
            return False
    return True
