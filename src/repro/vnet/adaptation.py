"""A VADAPT-style adaptation engine (Sect. 3, item 4).

The VNET model exists so that an agent can "address performance
problems through VM migration and overlay network control".  This
module implements the overlay-control half as the paper's references
describe it: observe the traffic matrix through the
:class:`~repro.vnet.monitor.TrafficMonitor`, find the heavy
communicating pairs, and reshape routing so their traffic takes the
most direct overlay path (e.g. replacing star/waypoint topologies with
direct links), applying every change through the same control
interface the user-level tools use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..obs.context import Observability
from ..sim import Simulator
from ..sim.fluid import fluid_region_of
from .control import VnetControl
from .monitor import TrafficMonitor
from .overlay import DEFAULT_VNET_PORT, DestType, LinkProto, LinkSpec, RouteEntry

if TYPE_CHECKING:  # pragma: no cover
    from .core import VnetCore

__all__ = ["AdaptationEngine", "AdaptationAction", "FailoverRecord"]


@dataclass
class AdaptationAction:
    """One applied reconfiguration, for audit/inspection."""

    when_ns: int
    core: str
    description: str


@dataclass
class FailoverRecord:
    """Bookkeeping for one link the engine has routed around.

    ``saved_routes`` are the original entries, restored verbatim at
    failback; ``healthy_since_ns`` implements the re-probe backoff — a
    healed link must stay continuously alive for the backoff window
    before its routes return (a flap resets the clock).
    """

    core_idx: int
    link: str
    detour: str
    saved_routes: list[RouteEntry] = field(default_factory=list)
    failed_at_ns: int = 0
    healthy_since_ns: Optional[int] = None


class AdaptationEngine:
    """Greedy topology adaptation over a set of VNET/P cores.

    The engine knows, for each core, where every guest MAC lives (the
    location directory an IaaS controller maintains).  On each
    :meth:`adapt` pass it ensures the top-k flows have *direct* overlay
    links from the source's core to the destination's host, creating
    links and rewriting routes through :class:`VnetControl` as needed.
    """

    def __init__(
        self,
        sim: Simulator,
        cores: list["VnetCore"],
        controls: Optional[list[VnetControl]] = None,
        min_flow_bytes: int = 64 * 1024,
        failback_backoff_ns: int = 2_000_000,
    ):
        self.sim = sim
        self.cores = cores
        self.controls = controls or [VnetControl(sim, c) for c in cores]
        self.min_flow_bytes = min_flow_bytes
        self.failback_backoff_ns = failback_backoff_ns
        self.monitors = [
            c.monitor if c.monitor is not None else TrafficMonitor(sim, c)
            for c in cores
        ]
        # Location directory: guest MAC -> (core index, host ip).
        self.directory: dict[str, int] = {}
        for i, core in enumerate(cores):
            for mac in core.local_macs():
                self.directory[mac] = i
        self.actions: list[AdaptationAction] = []
        # Links currently routed around, keyed by (core index, link name).
        self.failed_links: dict[tuple[int, str], FailoverRecord] = {}
        self.obs = Observability.of(sim)
        metrics = self.obs.metrics
        self._failovers = metrics.counter("vnet.adaptation.failovers")
        self._failbacks = metrics.counter("vnet.adaptation.failbacks")

    def refresh_directory(self) -> None:
        """Re-learn MAC locations (after migrations)."""
        self.directory = {
            mac: i for i, core in enumerate(self.cores) for mac in core.local_macs()
        }

    def _ensure_direct_route(self, core_idx: int, dst_mac: str) -> bool:
        """Make core_idx reach dst_mac via a direct link; returns True if
        anything changed."""
        dst_idx = self.directory.get(dst_mac)
        if dst_idx is None or dst_idx == core_idx:
            return False
        core = self.cores[core_idx]
        control = self.controls[core_idx]
        target_host = self.cores[dst_idx].host
        # Find or create a UDP link straight to the destination host.
        link_name = None
        for name, link in core.links.items():
            if link.proto is LinkProto.UDP and link.dst_ip == target_host.ip:
                link_name = name
                break
        changed = False
        if link_name is None:
            link_name = f"adapt-{dst_idx}"
            core.add_link(
                LinkSpec(
                    name=link_name,
                    proto=LinkProto.UDP,
                    dst_ip=target_host.ip,
                    dst_port=DEFAULT_VNET_PORT,
                )
            )
            self._log(core_idx, f"created direct link {link_name} -> {target_host.ip}")
            changed = True
        # Is the current best route already using it?
        try:
            entry, _ = core.routing.lookup("00:00:00:00:00:00", dst_mac)
            current = (entry.dest_type, entry.dest_name)
        except Exception:
            current = None
        if current != (DestType.LINK, link_name):
            core.routing.remove_matching(dst_mac=dst_mac)
            core.add_route(
                RouteEntry(
                    src_mac="any",
                    dst_mac=dst_mac,
                    dest_type=DestType.LINK,
                    dest_name=link_name,
                )
            )
            self._log(core_idx, f"routed {dst_mac} via {link_name}")
            changed = True
        return changed

    def adapt(self, top_k: int = 8) -> int:
        """One adaptation pass; returns the number of changes applied."""
        changes = 0
        for i, monitor in enumerate(self.monitors):
            for flow in monitor.top_flows(top_k):
                if flow.bytes < self.min_flow_bytes:
                    continue
                if self._ensure_direct_route(i, flow.dst):
                    changes += 1
        return changes

    def run_periodic(self, interval_ns: int, rounds: int):
        """Generator: adapt every ``interval_ns`` for ``rounds`` passes
        (spawn with ``sim.process``)."""
        for _ in range(rounds):
            yield self.sim.timeout(interval_ns)
            self.adapt()

    # -- failover (overlay resilience) ------------------------------------
    def failover(self) -> int:
        """One failure-handling pass; returns routes moved (both ways).

        For every link a core's monitor declares dead, reroute the
        affected :class:`RouteEntry`\\ s through a waypoint host that
        both ends can still reach (the overlay-waypoint forwarding the
        inbound dispatcher already supports).  Healed links get their
        original routes back only after staying alive for the full
        ``failback_backoff_ns`` window.
        """
        changes = 0
        for i, monitor in enumerate(self.monitors):
            for link_name in monitor.dead_links():
                if (i, link_name) in self.failed_links:
                    continue
                changes += self._reroute_around(i, link_name)
            changes += self._maybe_failback(i)
        return changes

    def run_failover(self, interval_ns: int, until_ns: int):
        """Generator: run :meth:`failover` every ``interval_ns`` until the
        ``until_ns`` horizon (spawn with ``sim.process``)."""
        while self.sim.now + interval_ns <= until_ns:
            yield self.sim.timeout(interval_ns)
            self.failover()

    def _host_index(self, ip: str) -> Optional[int]:
        for i, core in enumerate(self.cores):
            if core.host.ip == ip:
                return i
        return None

    def _link_to(self, core: "VnetCore", dst_ip: str) -> Optional[str]:
        for name, link in core.links.items():
            if link.proto is LinkProto.UDP and link.dst_ip == dst_ip:
                return name
        return None

    def _find_detour(self, core_idx: int, dst_idx: int,
                     dead_link: str) -> Optional[str]:
        """A live link from ``core_idx`` to a waypoint that reaches
        ``dst_idx`` — the overlay path around one dead link."""
        monitor = self.monitors[core_idx]
        dst_ip = self.cores[dst_idx].host.ip
        for k, waypoint in enumerate(self.cores):
            if k in (core_idx, dst_idx):
                continue
            via = self._link_to(self.cores[core_idx], waypoint.host.ip)
            if via is None or via == dead_link or not monitor.link_alive(via):
                continue
            onward = self._link_to(waypoint, dst_ip)
            if onward is None or not self.monitors[k].link_alive(onward):
                continue
            return via
        return None

    def _reroute_around(self, core_idx: int, link_name: str) -> int:
        core = self.cores[core_idx]
        link = core.links.get(link_name)
        if link is None:
            return 0
        dst_idx = self._host_index(link.dst_ip)
        affected = core.routing.routes_to(DestType.LINK, link_name)
        if dst_idx is None or not affected:
            return 0
        detour = self._find_detour(core_idx, dst_idx, link_name)
        if detour is None:
            # No waypoint reachable right now; retried next pass.
            self._log(core_idx, f"link {link_name} dead; no detour available")
            return 0
        # Flush compiled flows riding the dead link under the audit
        # reason "failover" before the rewiring below also fires the
        # route-change flush (belt and braces, both timing-free).
        if core.flowcache is not None:
            core.flowcache.invalidate_link(link_name, reason="failover")
        region = fluid_region_of(self.sim)
        if region is not None:
            # The analytic fluid model is compiled against the same
            # routes; hand affected flows back to packets at this exact
            # instant (the rewiring below would also release them via
            # the route-change hook — this names the cause).
            region.deescalate_all("failover")
        saved = list(affected)
        for route in saved:
            core.routing.remove(route)
            core.add_route(
                RouteEntry(
                    src_mac=route.src_mac,
                    dst_mac=route.dst_mac,
                    dest_type=DestType.LINK,
                    dest_name=detour,
                )
            )
        self.failed_links[(core_idx, link_name)] = FailoverRecord(
            core_idx=core_idx,
            link=link_name,
            detour=detour,
            saved_routes=saved,
            failed_at_ns=self.sim.now,
        )
        self._failovers.inc()
        self._log(
            core_idx,
            f"failover: {len(saved)} route(s) off dead link {link_name} "
            f"via {detour}",
        )
        self.obs.health.log.emit(
            self.sim.now, "vnet.adaptation", "failover", "warning",
            f"{self.cores[core_idx].name}: {len(saved)} route(s) off dead "
            f"link {link_name} via {detour}", float(len(saved)))
        return len(saved)

    def _maybe_failback(self, core_idx: int) -> int:
        now = self.sim.now
        monitor = self.monitors[core_idx]
        changes = 0
        for key, record in list(self.failed_links.items()):
            if key[0] != core_idx:
                continue
            if not monitor.link_alive(record.link):
                record.healthy_since_ns = None  # flapped: restart backoff
                continue
            if record.healthy_since_ns is None:
                record.healthy_since_ns = now
                continue
            if now - record.healthy_since_ns < self.failback_backoff_ns:
                continue
            core = self.cores[core_idx]
            # Entries compiled against the detour must not survive the
            # restore (the route-change flush also covers this; the
            # explicit call names the cause in the invalidation metrics).
            if core.flowcache is not None:
                core.flowcache.invalidate_link(record.detour, reason="failback")
            region = fluid_region_of(self.sim)
            if region is not None:
                region.deescalate_all("failback")
            for route in record.saved_routes:
                core.routing.remove_matching(
                    src_mac=route.src_mac,
                    dst_mac=route.dst_mac,
                    dest_name=record.detour,
                )
                core.add_route(route)
            del self.failed_links[key]
            self._failbacks.inc()
            self._log(
                core_idx,
                f"failback: restored {len(record.saved_routes)} route(s) "
                f"to {record.link}",
            )
            self.obs.health.log.emit(
                self.sim.now, "vnet.adaptation", "failback", "info",
                f"{self.cores[core_idx].name}: restored "
                f"{len(record.saved_routes)} route(s) to {record.link}",
                float(len(record.saved_routes)))
            changes += len(record.saved_routes)
        return changes

    def _log(self, core_idx: int, description: str) -> None:
        self.actions.append(
            AdaptationAction(
                when_ns=self.sim.now,
                core=self.cores[core_idx].name,
                description=description,
            )
        )
