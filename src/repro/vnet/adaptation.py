"""A VADAPT-style adaptation engine (Sect. 3, item 4).

The VNET model exists so that an agent can "address performance
problems through VM migration and overlay network control".  This
module implements the overlay-control half as the paper's references
describe it: observe the traffic matrix through the
:class:`~repro.vnet.monitor.TrafficMonitor`, find the heavy
communicating pairs, and reshape routing so their traffic takes the
most direct overlay path (e.g. replacing star/waypoint topologies with
direct links), applying every change through the same control
interface the user-level tools use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..sim import Simulator
from .control import VnetControl
from .monitor import TrafficMonitor
from .overlay import DEFAULT_VNET_PORT, DestType, LinkProto, LinkSpec, RouteEntry

if TYPE_CHECKING:  # pragma: no cover
    from .core import VnetCore

__all__ = ["AdaptationEngine", "AdaptationAction"]


@dataclass
class AdaptationAction:
    """One applied reconfiguration, for audit/inspection."""

    when_ns: int
    core: str
    description: str


class AdaptationEngine:
    """Greedy topology adaptation over a set of VNET/P cores.

    The engine knows, for each core, where every guest MAC lives (the
    location directory an IaaS controller maintains).  On each
    :meth:`adapt` pass it ensures the top-k flows have *direct* overlay
    links from the source's core to the destination's host, creating
    links and rewriting routes through :class:`VnetControl` as needed.
    """

    def __init__(
        self,
        sim: Simulator,
        cores: list["VnetCore"],
        controls: Optional[list[VnetControl]] = None,
        min_flow_bytes: int = 64 * 1024,
    ):
        self.sim = sim
        self.cores = cores
        self.controls = controls or [VnetControl(sim, c) for c in cores]
        self.min_flow_bytes = min_flow_bytes
        self.monitors = [
            c.monitor if c.monitor is not None else TrafficMonitor(sim, c)
            for c in cores
        ]
        # Location directory: guest MAC -> (core index, host ip).
        self.directory: dict[str, int] = {}
        for i, core in enumerate(cores):
            for mac in core.local_macs():
                self.directory[mac] = i
        self.actions: list[AdaptationAction] = []

    def refresh_directory(self) -> None:
        """Re-learn MAC locations (after migrations)."""
        self.directory = {
            mac: i for i, core in enumerate(self.cores) for mac in core.local_macs()
        }

    def _ensure_direct_route(self, core_idx: int, dst_mac: str) -> bool:
        """Make core_idx reach dst_mac via a direct link; returns True if
        anything changed."""
        dst_idx = self.directory.get(dst_mac)
        if dst_idx is None or dst_idx == core_idx:
            return False
        core = self.cores[core_idx]
        control = self.controls[core_idx]
        target_host = self.cores[dst_idx].host
        # Find or create a UDP link straight to the destination host.
        link_name = None
        for name, link in core.links.items():
            if link.proto is LinkProto.UDP and link.dst_ip == target_host.ip:
                link_name = name
                break
        changed = False
        if link_name is None:
            link_name = f"adapt-{dst_idx}"
            core.add_link(
                LinkSpec(
                    name=link_name,
                    proto=LinkProto.UDP,
                    dst_ip=target_host.ip,
                    dst_port=DEFAULT_VNET_PORT,
                )
            )
            self._log(core_idx, f"created direct link {link_name} -> {target_host.ip}")
            changed = True
        # Is the current best route already using it?
        try:
            entry, _ = core.routing.lookup("00:00:00:00:00:00", dst_mac)
            current = (entry.dest_type, entry.dest_name)
        except Exception:
            current = None
        if current != (DestType.LINK, link_name):
            core.routing.remove_matching(dst_mac=dst_mac)
            core.add_route(
                RouteEntry(
                    src_mac="any",
                    dst_mac=dst_mac,
                    dest_type=DestType.LINK,
                    dest_name=link_name,
                )
            )
            self._log(core_idx, f"routed {dst_mac} via {link_name}")
            changed = True
        return changed

    def adapt(self, top_k: int = 8) -> int:
        """One adaptation pass; returns the number of changes applied."""
        changes = 0
        for i, monitor in enumerate(self.monitors):
            for flow in monitor.top_flows(top_k):
                if flow.bytes < self.min_flow_bytes:
                    continue
                if self._ensure_direct_route(i, flow.dst):
                    changes += 1
        return changes

    def run_periodic(self, interval_ns: int, rounds: int):
        """Generator: adapt every ``interval_ns`` for ``rounds`` passes
        (spawn with ``sim.process``)."""
        for _ in range(rounds):
            yield self.sim.timeout(interval_ns)
            self.adapt()

    def _log(self, core_idx: int, description: str) -> None:
        self.actions.append(
            AdaptationAction(
                when_ns=self.sim.now,
                core=self.cores[core_idx].name,
                description=description,
            )
        )
