"""Overlay topology objects: links, interfaces, and routes (Sect. 4.3).

A routing-table entry maps a (source MAC, destination MAC) pair — either
may be a wildcard — to a *destination*: a **link** (the UDP/IP address of
a remote VNET/P core or VNET/U daemon, or the local physical network) or
an **interface** (a local virtual NIC).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

__all__ = [
    "ANY_MAC",
    "DEFAULT_VNET_PORT",
    "LinkProto",
    "LinkSpec",
    "InterfaceSpec",
    "DestType",
    "RouteEntry",
    "validate_mac",
]

ANY_MAC = "any"
DEFAULT_VNET_PORT = 5002

_MAC_RE = re.compile(r"^([0-9a-f]{2}:){5}[0-9a-f]{2}$")


def validate_mac(mac: str, allow_any: bool = True) -> str:
    """Normalise and validate a MAC address (or the ``any`` wildcard)."""
    mac = mac.strip().lower()
    if allow_any and mac == ANY_MAC:
        return ANY_MAC
    if not _MAC_RE.match(mac):
        raise ValueError(f"malformed MAC address: {mac!r}")
    return mac


class LinkProto(enum.Enum):
    """Transport used to traverse an overlay link (Sect. 4.5)."""

    UDP = "udp"          # encapsulated send (the evaluated configuration)
    TCP = "tcp"          # encapsulated send over a TCP stream
    DIRECT = "direct"    # raw Ethernet onto the local physical network


@dataclass(frozen=True)
class LinkSpec:
    """An overlay destination on some other machine (or the local net)."""

    name: str
    proto: LinkProto
    dst_ip: str = ""
    dst_port: int = DEFAULT_VNET_PORT

    def __post_init__(self):
        if self.proto is not LinkProto.DIRECT and not self.dst_ip:
            raise ValueError(f"link {self.name!r}: {self.proto.value} link needs dst_ip")


@dataclass(frozen=True)
class InterfaceSpec:
    """A local destination: a virtual NIC registered with the core."""

    name: str
    mac: str

    def __post_init__(self):
        object.__setattr__(self, "mac", validate_mac(self.mac, allow_any=False))


class DestType(enum.Enum):
    LINK = "link"
    INTERFACE = "interface"


@dataclass(frozen=True)
class RouteEntry:
    """One routing rule: (src_mac, dst_mac) -> destination."""

    src_mac: str
    dst_mac: str
    dest_type: DestType
    dest_name: str

    def __post_init__(self):
        object.__setattr__(self, "src_mac", validate_mac(self.src_mac))
        object.__setattr__(self, "dst_mac", validate_mac(self.dst_mac))

    def matches(self, src: str, dst: str) -> bool:
        return (self.src_mac in (ANY_MAC, src)) and (self.dst_mac in (ANY_MAC, dst))

    @property
    def specificity(self) -> int:
        """Match precedence: exact pairs beat single-side matches beat wildcards."""
        return (self.dst_mac != ANY_MAC) * 2 + (self.src_mac != ANY_MAC)
