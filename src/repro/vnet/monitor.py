"""Overlay traffic monitoring (Sect. 3, items 1-2).

The VNET layer is "a locus of activity for an adaptive system": it can
observe application communication behaviour without guest cooperation.
This module implements the passive part — a per-core traffic matrix
keyed by (source MAC, destination MAC) with byte/packet counts and
rates — which an adaptation engine (see :mod:`repro.vnet.adaptation`)
turns into topology/routing changes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from ..obs.context import Observability
from ..sim import Simulator
from ..units import SECOND

if TYPE_CHECKING:  # pragma: no cover
    from .core import VnetCore

__all__ = ["FlowStats", "TrafficMonitor"]


@dataclass
class FlowStats:
    """Cumulative observation of one (src, dst) MAC flow."""

    src: str
    dst: str
    packets: int = 0
    bytes: int = 0
    first_seen_ns: int = 0
    last_seen_ns: int = 0

    def rate_Bps(self, now_ns: int) -> float:
        """Average byte rate over the flow's observed lifetime.

        The observation window runs from ``first_seen_ns`` to the later of
        ``now_ns`` and ``last_seen_ns``.  A zero-length window (a flow's
        very first packet, observed just now) has no meaningful rate and
        reports 0.0 rather than an arbitrarily inflated value.
        """
        span = max(now_ns, self.last_seen_ns) - self.first_seen_ns
        if span <= 0:
            return 0.0
        return self.bytes * SECOND / span


class TrafficMonitor:
    """Observes every packet a VNET/P core routes.

    Installed by wrapping the core's outbound processing; the core calls
    :meth:`observe` from both data paths.  Cost-free in simulated time —
    the real system piggybacks counters on the routing lookup it already
    performs.
    """

    def __init__(self, sim: Simulator, core: "VnetCore"):
        self.sim = sim
        self.core = core
        self.flows: dict[tuple[str, str], FlowStats] = {}
        metrics = Observability.of(sim).metrics
        prefix = f"vnet.monitor.{core.host.name}"
        self._packets = metrics.counter(f"{prefix}.packets")
        self._bytes = metrics.counter(f"{prefix}.bytes")
        self._flows_gauge = metrics.gauge(f"{prefix}.flows")
        core.monitor = self

    @property
    def packets_observed(self) -> int:
        return self._packets.value

    @property
    def bytes_observed(self) -> int:
        return self._bytes.value

    def observe(self, src: str, dst: str, nbytes: int) -> None:
        key = (src, dst)
        flow = self.flows.get(key)
        if flow is None:
            flow = FlowStats(src=src, dst=dst, first_seen_ns=self.sim.now)
            self.flows[key] = flow
            self._flows_gauge.set(len(self.flows))
        flow.packets += 1
        flow.bytes += nbytes
        flow.last_seen_ns = self.sim.now
        self._packets.inc()
        self._bytes.inc(nbytes)

    # -- queries ----------------------------------------------------------
    def matrix(self) -> dict[tuple[str, str], int]:
        """Byte counts per (src, dst) pair."""
        return {k: f.bytes for k, f in self.flows.items()}

    def top_flows(self, n: int = 5) -> list[FlowStats]:
        return sorted(self.flows.values(), key=lambda f: f.bytes, reverse=True)[:n]

    def total_bytes(self) -> int:
        return sum(f.bytes for f in self.flows.values())

    def communicating_pairs(self, min_bytes: int = 0) -> Iterable[tuple[str, str]]:
        for key, flow in self.flows.items():
            if flow.bytes >= min_bytes:
                yield key

    def reset(self) -> None:
        self.flows.clear()
        self._packets.reset()
        self._bytes.reset()
        self._flows_gauge.set(0)
