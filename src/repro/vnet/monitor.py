"""Overlay traffic monitoring (Sect. 3, items 1-2) and link liveness.

The VNET layer is "a locus of activity for an adaptive system": it can
observe application communication behaviour without guest cooperation.
This module implements the passive part — a per-core traffic matrix
keyed by (source MAC, destination MAC) with byte/packet counts and
rates — which an adaptation engine (see :mod:`repro.vnet.adaptation`)
turns into topology/routing changes.

It also tracks **overlay link health** from the heartbeats emitted by
:class:`~repro.vnet.heartbeat.HeartbeatService`: each watched link has
a :class:`LinkHealth` record with an EWMA of the inter-heartbeat
interval, and a simplified phi-accrual detector (:meth:`TrafficMonitor.phi`
= silence measured in mean intervals) declares a link dead once phi
exceeds ``phi_threshold``.  Unlike a fixed timeout, the detector adapts
to the actual heartbeat cadence the link has been delivering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from ..obs.context import Observability
from ..sim import Simulator
from ..units import SECOND

if TYPE_CHECKING:  # pragma: no cover
    from .core import VnetCore

__all__ = ["FlowStats", "LinkHealth", "TrafficMonitor"]


@dataclass
class FlowStats:
    """Cumulative observation of one (src, dst) MAC flow."""

    src: str
    dst: str
    packets: int = 0
    bytes: int = 0
    first_seen_ns: int = 0
    last_seen_ns: int = 0

    def rate_Bps(self, now_ns: int) -> float:
        """Average byte rate over the flow's observed lifetime.

        The observation window runs from ``first_seen_ns`` to the later of
        ``now_ns`` and ``last_seen_ns``.  A zero-length window (a flow's
        very first packet, observed just now) has no meaningful rate and
        reports 0.0 rather than an arbitrarily inflated value.
        """
        span = max(now_ns, self.last_seen_ns) - self.first_seen_ns
        if span <= 0:
            return 0.0
        return self.bytes * SECOND / span


@dataclass
class LinkHealth:
    """Liveness state of one watched overlay link.

    ``mean_interval_ns`` is an EWMA of observed inter-heartbeat gaps,
    seeded with the expected cadence at watch time so the detector is
    calibrated before the first beat lands.
    """

    link: str
    peer_ip: str
    expected_interval_ns: int
    watched_since_ns: int
    beats: int = 0
    last_heard_ns: int = -1
    mean_interval_ns: float = 0.0

    # EWMA smoothing factor for observed heartbeat gaps.
    ALPHA = 0.2


class TrafficMonitor:
    """Observes every packet a VNET/P core routes, and its links' health.

    Installed by wrapping the core's outbound processing; the core calls
    :meth:`observe` from both data paths.  Cost-free in simulated time —
    the real system piggybacks counters on the routing lookup it already
    performs.  Link liveness is fed by heartbeat interception on the
    core's inbound port (:meth:`note_heartbeat_from`).
    """

    #: A link is declared dead once it has been silent for this many
    #: mean heartbeat intervals (simplified phi-accrual threshold).
    PHI_DEAD = 8.0

    def __init__(self, sim: Simulator, core: "VnetCore",
                 phi_threshold: float = PHI_DEAD):
        self.sim = sim
        self.core = core
        self.flows: dict[tuple[str, str], FlowStats] = {}
        self.link_health: dict[str, LinkHealth] = {}
        self.phi_threshold = phi_threshold
        self.obs = Observability.of(sim)
        self._known_dead: set[str] = set()
        metrics = self.obs.metrics
        prefix = f"vnet.monitor.{core.host.name}"
        self._health_monitor = prefix
        self._packets = metrics.counter(f"{prefix}.packets")
        self._bytes = metrics.counter(f"{prefix}.bytes")
        self._flows_gauge = metrics.gauge(f"{prefix}.flows")
        self._heartbeats = metrics.counter(f"{prefix}.heartbeats")
        self._links_up = metrics.gauge(f"{prefix}.links_up")
        self._links_down = metrics.gauge(f"{prefix}.links_down")
        core.monitor = self

    @property
    def packets_observed(self) -> int:
        return self._packets.value

    @property
    def bytes_observed(self) -> int:
        return self._bytes.value

    def observe(self, src: str, dst: str, nbytes: int) -> None:
        key = (src, dst)
        flow = self.flows.get(key)
        if flow is None:
            flow = FlowStats(src=src, dst=dst, first_seen_ns=self.sim.now)
            self.flows[key] = flow
            self._flows_gauge.set(len(self.flows))
        flow.packets += 1
        flow.bytes += nbytes
        flow.last_seen_ns = self.sim.now
        self._packets.inc()
        self._bytes.inc(nbytes)

    # -- queries ----------------------------------------------------------
    def matrix(self) -> dict[tuple[str, str], int]:
        """Byte counts per (src, dst) pair."""
        return {k: f.bytes for k, f in self.flows.items()}

    def top_flows(self, n: int = 5) -> list[FlowStats]:
        return sorted(self.flows.values(), key=lambda f: f.bytes, reverse=True)[:n]

    def total_bytes(self) -> int:
        return sum(f.bytes for f in self.flows.values())

    def communicating_pairs(self, min_bytes: int = 0) -> Iterable[tuple[str, str]]:
        for key, flow in self.flows.items():
            if flow.bytes >= min_bytes:
                yield key

    # -- link liveness (phi-style heartbeat timeout detector) -------------
    def watch_link(self, link_name: str, peer_ip: str,
                   expected_interval_ns: int) -> LinkHealth:
        """Start (or continue) tracking liveness of ``link_name``.

        Idempotent: the heartbeat service calls this every emit round.
        """
        health = self.link_health.get(link_name)
        if health is None:
            health = LinkHealth(
                link=link_name,
                peer_ip=peer_ip,
                expected_interval_ns=int(expected_interval_ns),
                watched_since_ns=self.sim.now,
                mean_interval_ns=float(expected_interval_ns),
            )
            self.link_health[link_name] = health
            self._update_link_gauges()
        return health

    def note_heartbeat_from(self, src_ip: str) -> None:
        """A heartbeat from ``src_ip`` arrived on this core's inbound path."""
        self._heartbeats.inc()
        now = self.sim.now
        matched = False
        for health in self.link_health.values():
            if health.peer_ip != src_ip:
                continue
            matched = True
            if health.last_heard_ns >= 0:
                gap = now - health.last_heard_ns
                health.mean_interval_ns += LinkHealth.ALPHA * (
                    gap - health.mean_interval_ns
                )
            health.last_heard_ns = now
            health.beats += 1
        if not matched:
            # A peer we have a link to but never explicitly watched (e.g.
            # the remote side started beating first): learn it lazily.
            for name, link in self.core.links.items():
                if getattr(link, "dst_ip", None) == src_ip:
                    health = self.watch_link(name, src_ip, 500_000)
                    health.last_heard_ns = now
                    health.beats += 1
                    break

    def phi(self, link_name: str) -> float:
        """Suspicion level of ``link_name``: silence in mean heartbeat
        intervals (0.0 for unwatched links)."""
        health = self.link_health.get(link_name)
        if health is None:
            return 0.0
        base = health.last_heard_ns if health.last_heard_ns >= 0 \
            else health.watched_since_ns
        mean = health.mean_interval_ns or float(health.expected_interval_ns)
        return (self.sim.now - base) / mean

    def link_alive(self, link_name: str) -> bool:
        """Liveness verdict; unwatched links are optimistically alive."""
        return self.phi(link_name) <= self.phi_threshold

    def dead_links(self) -> list[str]:
        """Watched links whose phi exceeds the death threshold.

        Verdict *transitions* are published as ``link-dead`` /
        ``link-recovered`` :class:`~repro.obs.health.HealthEvent`s with
        the exact virtual timestamp of the evaluation, so failure
        detection time can be read off the health log instead of polling
        route tables.
        """
        dead = [name for name in self.link_health
                if not self.link_alive(name)]
        now_dead = set(dead)
        log = self.obs.health.log
        for name in sorted(now_dead - self._known_dead):
            log.emit(self.sim.now, self._health_monitor, "link-dead",
                     "critical", f"link {name} silent (phi > "
                     f"{self.phi_threshold:g})", self.phi(name))
            # A dead verdict immediately disqualifies every compiled
            # flow riding the link: the per-flow fast path must never
            # serve a route the detector has condemned.
            if self.core.flowcache is not None:
                self.core.flowcache.invalidate_link(name, reason="link-dead")
        for name in sorted(self._known_dead - now_dead):
            log.emit(self.sim.now, self._health_monitor, "link-recovered",
                     "info", f"link {name} heartbeating again",
                     self.phi(name))
        self._known_dead = now_dead
        self._update_link_gauges(n_dead=len(dead))
        return dead

    def _update_link_gauges(self, n_dead: Optional[int] = None) -> None:
        if n_dead is None:
            n_dead = sum(1 for name in self.link_health
                         if not self.link_alive(name))
        self._links_down.set(n_dead)
        self._links_up.set(len(self.link_health) - n_dead)

    def reset(self) -> None:
        self.flows.clear()
        self.link_health.clear()
        self._known_dead.clear()
        self._packets.reset()
        self._bytes.reset()
        self._flows_gauge.set(0)
        self._links_up.set(0)
        self._links_down.set(0)
