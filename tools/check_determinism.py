#!/usr/bin/env python3
"""Determinism lint run by CI (the ``lint`` job).

Simulated results must be a pure function of (code, config, seed): the
repro's golden tests, the content-addressed result cache and the
chaos-suite same-seed diff all depend on it.  This lint statically
rejects the calls that break that property inside ``src/repro``:

* ``time.time()`` / ``time.time_ns()`` — wall-clock reads;
* ``datetime.now()`` / ``utcnow()`` / ``today()`` — same, dressed up;
* ``numpy.random.default_rng()`` **with no seed argument** — OS-entropy
  seeded generator;
* ``random.<fn>()`` on the global ``random`` module — hidden global
  state (``random.seed`` and seeded ``random.Random(n)`` instances are
  allowed; the exec engine seeds the global generator per point).

Findings outside the allowlist fail the run.  The allowlist maps a
repo-relative path to the set of patterns permitted there — today only
``__main__.py``'s wall-clock stopwatch around experiment rendering,
which never feeds a simulated result.

Usage::

    python tools/check_determinism.py            # lint src/repro
    python tools/check_determinism.py FILE...    # lint specific files

Importable pieces for the test suite: :func:`check_source` (one file's
findings) and :func:`check_tree`.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

# path (relative to the repo root, POSIX separators) -> allowed patterns.
ALLOWLIST: dict[str, set[str]] = {
    "src/repro/__main__.py": {"time.time"},
}

_DATETIME_FNS = {"now", "utcnow", "today"}
_RANDOM_ALLOWED = {"seed"}


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for an attribute/name chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _finding(call: ast.Call) -> tuple[str, str] | None:
    """(pattern, message) when this call is nondeterministic, else None."""
    func = call.func
    dotted = _dotted(func)
    if dotted in ("time.time", "time.time_ns"):
        return "time.time", f"wall-clock read {dotted}()"
    if isinstance(func, ast.Attribute) and func.attr in _DATETIME_FNS:
        base = _dotted(func.value)
        if base in ("datetime", "datetime.datetime", "date", "datetime.date"):
            return "datetime.now", f"wall-clock read {dotted}()"
    is_default_rng = dotted is not None and (
        dotted == "default_rng" or dotted.endswith(".default_rng")
    )
    if is_default_rng and not call.args and not call.keywords:
        return "unseeded-default-rng", "default_rng() without a seed"
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name) \
            and func.value.id == "random":
        if func.attr in _RANDOM_ALLOWED:
            return None
        if func.attr == "Random" and (call.args or call.keywords):
            return None  # seeded instance
        return "random-global", f"global-state random.{func.attr}()"
    return None


def check_source(source: str, rel_path: str) -> list[str]:
    """Findings for one file's source text, as ``path:line: message``."""
    allowed = ALLOWLIST.get(rel_path, set())
    findings = []
    tree = ast.parse(source, filename=rel_path)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        hit = _finding(node)
        if hit is None or hit[0] in allowed:
            continue
        findings.append(f"{rel_path}:{node.lineno}: {hit[1]} [{hit[0]}]")
    return findings


def check_tree(repo: Path, paths: list[Path] | None = None) -> list[str]:
    """Findings across ``src/repro`` (or explicit ``paths``)."""
    if paths is None:
        paths = sorted((repo / "src" / "repro").rglob("*.py"))
    findings = []
    for py_file in paths:
        try:
            rel = py_file.resolve().relative_to(repo.resolve()).as_posix()
        except ValueError:
            rel = py_file.as_posix()
        findings.extend(check_source(py_file.read_text(encoding="utf-8"), rel))
    return findings


def main(argv: list[str]) -> int:
    repo = Path(__file__).resolve().parent.parent
    paths = [Path(a) for a in argv] or None
    findings = check_tree(repo, paths)
    for finding in findings:
        print(finding, file=sys.stderr)
    if findings:
        print(f"{len(findings)} determinism problem(s)", file=sys.stderr)
        return 1
    print("determinism OK: no wall-clock or unseeded-randomness calls in src/repro")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
