#!/usr/bin/env python
"""Wall-clock benchmark of the simulator fast path (``BENCH_sim.json``).

Runs the two packet-level scenarios that dominate the paper harness —
the Fig. 8 ttcp throughput pair (TCP bulk transfer + UDP goodput on the
VNET/P 10G testbed) and the Fig. 9 ping latency sweep — and reports
wall-clock seconds, kernel events processed, and frames moved, against
a pinned pre-refactor baseline.

Two kinds of numbers come out:

* **speedup** — baseline wall seconds / current wall seconds.  The
  baseline was measured on the seed datapath (per-frame helper
  processes, un-slotted PDUs, no kernel fast path) on the development
  machine; on other machines the absolute wall times shift but the
  ratio is what the fast-path work is judged by.  Regenerate a local
  baseline with ``--rebaseline`` for a like-for-like comparison.
* **observables** — simulated nanoseconds and frame counts per
  scenario.  These must match the baseline exactly: the fast path is
  required to be a pure wall-clock optimisation with bit-identical
  simulated results (the golden-trace tests in
  ``tests/test_determinism.py`` check the same property at span
  granularity).

The report also carries a ``flowcache`` section: an A/B of the per-flow
fast-path cache (``repro.vnet.flowcache``) on the fig8 bulk-transfer
scenario, recording the cache-on/cache-off wall speedup, the kernel
events the cache elides, and an ``observables_identical`` flag that the
bench gate enforces (the cache is required to be timing-neutral).

A ``fluid`` section A/Bs the hybrid fluid/packet fast path
(``repro.sim.fluid``) on a TCP-only 40 MB bulk transfer: events per
frame with the analytic stride engine on and off (the gate holds the
reduction to >=5x), strides taken, wall ratio, and the statistical
validation of the fluid run against the all-packet golden (identical
delivered bytes, completion time within tolerance).

An ``obs_overhead`` section measures the kernel self-profiler hook
(``repro.obs.profile``) on the fig8 scenario: wall time with no
profiler attached vs attached-but-disabled vs enabled.  The gate holds
the disabled hook to <=2% overhead (it must be safe to leave installed
everywhere) and requires simulated observables to be identical across
all three legs.

Two topology-layer sections ride along: ``routing_lookup``
micro-benchmarks ``RoutingTable.lookup`` at 10/100/1000 routes (the
gate checks the rate stays ~flat in table size — the indexed map vs the
old linear scan), and ``flowcache_topo`` provisions a generated
fat-tree and records the deterministic per-flow cache hit rate on a
multi-hop cross-pod probe.

With ``--suite`` it additionally times the whole experiment suite
(every experiment, quick-sized) serially and under ``--jobs N``
process fan-out (``repro.exec.Engine``), recording suite wall-clock
and parallel speedup.  The suite speedup is machine-dependent
(it scales with core count) and is reported informationally, not
checked against the baseline; row-identity of parallel runs is
enforced separately by ``tests/test_determinism.py``.

Usage::

    python tools/simbench.py            # full fig8 + fig9, 3 repeats
    python tools/simbench.py --quick    # CI-sized variant (~1 s)
    python tools/simbench.py --suite --jobs 4   # + suite serial vs parallel
    python tools/simbench.py --out BENCH_sim.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro import units  # noqa: E402
from repro.apps.ping import run_ping  # noqa: E402
from repro.apps.ttcp import run_ttcp_tcp, run_ttcp_udp  # noqa: E402
from repro.config import NETEFFECT_10G  # noqa: E402
from repro.harness.testbed import build_vnetp  # noqa: E402

# Pre-refactor baseline: seed datapath at commit cfbf83c, CPython 3.11,
# development machine, best of 2.  ``sim_ns`` and ``frames`` are
# machine-independent simulated observables; ``wall_s`` is not.
BASELINE = {
    "fig8_ttcp": {
        "wall_s": 2.858375792,
        "events": 487255,
        "sim_ns": 66352768,
        "frames": 11650,
    },
    "fig8_ttcp_quick": {
        "wall_s": 0.765819169,
        "events": 136745,
        "sim_ns": 22707519,
        "frames": 3288,
    },
    "fig9_ping": {
        "wall_s": 0.156911361,
        "events": 25254,
        "sim_ns": 46094116,
        "frames": 600,
    },
}


def _fig8(total_bytes: int, udp_ns: int, tuning=None, prepare=None):
    """Fig. 8 scenario: ttcp TCP transfer + UDP goodput, VNET/P over 10G.

    ``prepare`` (when given) is called with each testbed's simulator
    after build and before the workload — the obs_overhead section uses
    it to attach a (disabled or enabled) kernel profiler.
    """
    tb = build_vnetp(nic_params=NETEFFECT_10G, tuning=tuning)
    if prepare is not None:
        prepare(tb.sim)
    r = run_ttcp_tcp(tb.endpoints[0], tb.endpoints[1], total_bytes=total_bytes)
    tb2 = build_vnetp(nic_params=NETEFFECT_10G, tuning=tuning)
    if prepare is not None:
        prepare(tb2.sim)
    r2 = run_ttcp_udp(tb2.endpoints[0], tb2.endpoints[1], duration_ns=udp_ns)
    events = tb.sim.events_processed + tb2.sim.events_processed
    frames = sum(h.nic.tx_frames for h in tb.hosts) + sum(
        h.nic.tx_frames for h in tb2.hosts
    )
    return r.elapsed_ns + r2.elapsed_ns, frames, events


def fig8_ttcp():
    return _fig8(40 * units.MB, 20 * units.MS)


def fig8_ttcp_quick():
    return _fig8(10 * units.MB, 8 * units.MS)


def fig9_ping():
    """Fig. 9 scenario: ICMP RTT sweep over payload sizes, VNET/P over 10G."""
    sim_ns = 0
    frames = 0
    events = 0
    for size in (56, 1024, 8192):
        tb = build_vnetp(nic_params=NETEFFECT_10G)
        r = run_ping(tb.endpoints[0], tb.endpoints[1], data_size=size, count=100)
        sim_ns += sum(r.rtt_ns.samples)
        frames += sum(h.nic.tx_frames for h in tb.hosts)
        events += tb.sim.events_processed
    return sim_ns, frames, events


SCENARIOS = {
    "fig8_ttcp": fig8_ttcp,
    "fig8_ttcp_quick": fig8_ttcp_quick,
    "fig9_ping": fig9_ping,
}


def bench(fn, repeat: int) -> dict:
    """Best-of-``repeat`` measurement (min wall clock; observables fixed)."""
    best = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        sim_ns, frames, events = fn()
        wall = time.perf_counter() - t0
        rec = {
            "wall_s": wall,
            "events": events,
            "sim_ns": sim_ns,
            "frames": frames,
            "events_per_s": events / wall,
            "frames_per_s": frames / wall,
        }
        if best is None or rec["wall_s"] < best["wall_s"]:
            best = rec
    return best


def bench_flowcache(quick: bool, repeat: int) -> dict:
    """A/B the per-flow fast-path cache (repro.vnet.flowcache) on the
    cache-friendly fig8 bulk-transfer scenario.

    The cache is timing-neutral by design, so ``observables_identical``
    must be true; the win is wall-clock only (fewer kernel events per
    simulated packet), reported as the frames/s ratio.  The ratio is
    machine- and load-dependent and is reported informationally; the
    bench gate checks the identity flag, not the ratio.
    """
    import dataclasses

    from repro.config import VnetTuning

    total_bytes, udp_ns = (
        (10 * units.MB, 8 * units.MS) if quick else (40 * units.MB, 20 * units.MS)
    )

    def run(flow_cache: bool):
        tuning = dataclasses.replace(VnetTuning(), flow_cache=flow_cache)
        # The on/off wall delta is small, so this A/B needs more repeats
        # than the pinned-baseline scenarios to get a stable minimum.
        return bench(lambda: _fig8(total_bytes, udp_ns, tuning=tuning),
                     max(repeat, 5))

    on = run(True)
    off = run(False)
    return {
        "scenario": "fig8_ttcp_quick" if quick else "fig8_ttcp",
        "cache_on": on,
        "cache_off": off,
        # Deterministic, machine-independent measure of the elided work:
        # kernel events per frame with and without the compiled fast path.
        "events_elided": off["events"] - on["events"],
        "events_per_frame_on": on["events"] / on["frames"],
        "events_per_frame_off": off["events"] / off["frames"],
        "frames_per_s_ratio": on["frames_per_s"] / off["frames_per_s"],
        "wall_speedup": off["wall_s"] / on["wall_s"],
        "observables_identical": (
            on["sim_ns"] == off["sim_ns"] and on["frames"] == off["frames"]
        ),
    }


def bench_fluid(quick: bool, repeat: int) -> dict:
    """A/B the hybrid fluid/packet fast path (``repro.sim.fluid``).

    Uses a TCP-only 40 MB bulk transfer: the fluid region only captures
    steady-state reliable streams (fig8's UDP half is never eligible),
    and the capture / mode-switch / recapture head amortises over a
    long transfer — the quick 10 MB variant spends most of its life in
    transitions and understates the steady-state win.

    Unlike the flow cache, fluid is *not* timing-neutral: where it runs
    it replaces per-packet events with analytic strides, so the contract
    is statistical — same delivered bytes, completion time within the
    documented tolerance — plus the headline deterministic number, the
    events-per-frame reduction, which the bench gate holds to >=5x.
    """
    import dataclasses

    from repro.config import VnetTuning
    from repro.sim.fluid import fluid_region_of

    total_bytes = 40 * units.MB
    reps = 1 if quick else max(repeat, 2)
    side: dict = {}

    def run(fluid: bool):
        tuning = dataclasses.replace(VnetTuning(), fluid=fluid)

        def once():
            tb = build_vnetp(nic_params=NETEFFECT_10G, tuning=tuning)
            r = run_ttcp_tcp(tb.endpoints[0], tb.endpoints[1],
                             total_bytes=total_bytes)
            tb.sim.run()
            frames = sum(h.nic.tx_frames for h in tb.hosts)
            key = "on" if fluid else "off"
            side[key] = r.bytes_moved
            if fluid:
                region = fluid_region_of(tb.sim)
                side["stats"] = region.stats() if region else {}
            return r.elapsed_ns, frames, tb.sim.events_processed

        return bench(once, reps)

    off = run(False)
    on = run(True)
    stats = side.get("stats", {})
    elapsed_ratio = on["sim_ns"] / off["sim_ns"]
    tolerance = 0.15
    return {
        "scenario": "ttcp_tcp_40MB",
        "fluid_on": on,
        "fluid_off": off,
        # The machine-independent headline: kernel events per physical
        # frame, with and without the analytic stride engine.
        "events_per_frame_on": on["events"] / on["frames"],
        "events_per_frame_off": off["events"] / off["frames"],
        "events_per_frame_reduction": (off["events"] / off["frames"])
        / (on["events"] / on["frames"]),
        "wall_speedup": off["wall_s"] / on["wall_s"],
        "captures": stats.get("captures", 0),
        "strides": stats.get("strides", 0),
        "fluid_bytes": stats.get("bytes", 0),
        # Statistical validation: identical delivered bytes, completion
        # time within tolerance of the all-packet golden run.
        "bytes_identical": side.get("on") == side.get("off"),
        "elapsed_ratio": elapsed_ratio,
        "statistical_tolerance": tolerance,
        "in_tolerance": abs(elapsed_ratio - 1.0) <= tolerance,
    }


def bench_routing_lookup(repeat: int, n_lookups: int = 50_000) -> dict:
    """Micro-benchmark of ``RoutingTable.lookup`` at growing table sizes.

    Runs ``n_lookups`` cache-disabled lookups over distinct (src, dst)
    pairs against tables of 10/100/1000 routes and records lookups/s.
    With the indexed (src, dst) map the rate should be roughly flat in
    table size; ``scaling_1000_vs_10`` (rate at 1000 routes / rate at
    10) is the machine-independent-ish ratio the bench gate checks —
    the old linear scan put it near 0.01, the index keeps it near 1.
    """
    from repro.config import VnetCostParams
    from repro.proto.ethernet import mac_addr
    from repro.vnet.overlay import DestType, RouteEntry
    from repro.vnet.routing import RoutingTable

    sizes = (10, 100, 1000)
    out: dict = {"n_lookups": n_lookups, "sizes": {}}
    rates: dict[int, float] = {}
    for n_routes in sizes:
        table = RoutingTable(VnetCostParams(), cache_enabled=False)
        macs = [mac_addr(i + 1, prefix=0x5A) for i in range(n_routes)]
        table.load(
            [
                RouteEntry(src_mac="any", dst_mac=mac,
                           dest_type=DestType.LINK, dest_name="to0")
                for mac in macs
            ]
        )
        pairs = [(macs[i % n_routes], macs[(i * 7 + 1) % n_routes])
                 for i in range(n_lookups)]
        best = None
        for _ in range(max(repeat, 3)):
            t0 = time.perf_counter()
            for src, dst in pairs:
                table.lookup(src, dst)
            wall = time.perf_counter() - t0
            best = wall if best is None or wall < best else best
        rates[n_routes] = n_lookups / best
        out["sizes"][str(n_routes)] = {
            "wall_s": best,
            "lookups_per_s": rates[n_routes],
        }
    out["scaling_1000_vs_10"] = rates[1000] / rates[10]
    return out


def bench_flowcache_topo(quick: bool) -> dict:
    """Flow-cache hit rate on a generated cluster-scale topology.

    Provisions a fat-tree overlay (16 compute hosts quick, 64 full),
    probes the longest (cross-pod, 5-hop) path, and reports the
    aggregate per-flow fast-path hit rate across every core on the
    path.  Fully deterministic — the gate checks the hit rate against
    the reference to ±0.05.
    """
    from repro.topo import TopologyCompiler, fat_tree, probe_rtt_ns, provision

    n = 16 if quick else 64
    topo = fat_tree(n)
    compiled = TopologyCompiler(topo).compile()
    tb = compiled.build(configure=False)
    report = provision(tb)
    rtt_ns = probe_rtt_ns(tb, 0, n - 1, count=20)
    hits = sum(c.flowcache.hits for c in tb.cores if c.flowcache)
    misses = sum(c.flowcache.misses for c in tb.cores if c.flowcache)
    return {
        "topology": f"fat-tree/{n}",
        "hosts": len(compiled.hosts),
        "routes_total": compiled.routes_total,
        "convergence_ms": report.converged_ms,
        "probe_rtt_us": rtt_ns / 1e3,
        "hits": hits,
        "misses": misses,
        "hit_rate": hits / max(1, hits + misses),
    }


def bench_fairness(quick: bool) -> dict:
    """Reno fairness observables on the 1G contention scenarios.

    Runs three fairness points inline (no engine): two symmetric flows
    into one sink, the +200 us asymmetric-RTT pair, and a single flow
    under 2% Bernoulli loss.  Everything reported is a simulated
    observable, so it is fully deterministic; the gate pins the
    symmetric JFI >= 0.95 / utilization >= 0.80 acceptance floors and
    holds the asymmetric/lossy rows to the reference within tolerance.
    """
    from repro.harness.experiments.fairness import (
        _asymmetric_rtt_point,
        _fixed_bw_point,
        _varying_loss_point,
    )
    from repro.topo import TopoSpec

    horizon = (24 if quick else 60) * units.MS
    warmup = (6 if quick else 12) * units.MS
    mesh3 = TopoSpec(kind="mesh", n_hosts=3)
    sym = _fixed_bw_point("2 flows", 2, horizon, warmup, mesh3)
    asym = _asymmetric_rtt_point("+200us", 200_000, horizon, warmup, mesh3)
    lossy = _varying_loss_point("loss 2%", 0.02, 2027, horizon, warmup,
                                TopoSpec(kind="mesh", n_hosts=2))
    return {
        "scenario": "2-flow 1G contention" + (" (quick)" if quick else ""),
        "jfi_floor": 0.95,
        "utilization_floor": 0.80,
        "symmetric": {
            "jfi": sym["jfi"],
            "utilization": sym["utilization"],
            "score": sym["score"],
        },
        "asymmetric_rtt_200us": {
            "jfi": asym["jfi"],
            "utilization": asym["utilization"],
            "score": asym["score"],
        },
        "loss_2pct": {
            "utilization": lossy["utilization"],
            "fast_retransmits": lossy["fast_retransmits"],
            "retransmits": lossy["retransmits"],
        },
        "floors_met": sym["jfi"] >= 0.95 and sym["utilization"] >= 0.80,
    }


def bench_obs_overhead(quick: bool, repeat: int) -> dict:
    """Cost of the kernel self-profiler hook (``repro.obs.profile``).

    Three legs on the fig8 scenario: no profiler attached (the seed
    configuration every other section measures), a profiler attached
    but *disabled* (the always-on production state: one attribute check
    at the top of every ``Simulator.run`` call), and a profiler
    *enabled* (full per-event attribution).  The contract the bench
    gate enforces is that the disabled hook is free —
    ``overhead_ratio`` (disabled wall / detached wall) must stay within
    ``max_overhead`` (2%) — and that profiling never changes simulated
    observables across any leg.  ``enabled_ratio`` is informational:
    attribution costs real wall time, which is fine because it is
    opt-in.

    The legs are interleaved round-robin (not run in blocks) so slow
    drift in machine load hits all three equally; each leg keeps its
    best wall time over ``max(repeat, 5)`` rounds.
    """
    from repro.obs.profile import KernelProfiler

    total_bytes, udp_ns = (
        (10 * units.MB, 8 * units.MS) if quick else (40 * units.MB, 20 * units.MS)
    )

    def attach(enabled: bool):
        def prepare(sim):
            prof = KernelProfiler.install(sim)
            if enabled:
                prof.enable()
        return prepare

    legs = {
        "detached": None,
        "disabled": attach(False),
        "enabled": attach(True),
    }
    best: dict[str, dict] = {}
    observables: dict[str, tuple] = {}
    for _ in range(max(repeat, 5)):
        for name, prepare in legs.items():
            t0 = time.perf_counter()
            sim_ns, frames, events = _fig8(total_bytes, udp_ns, prepare=prepare)
            wall = time.perf_counter() - t0
            observables[name] = (sim_ns, frames, events)
            if name not in best or wall < best[name]["wall_s"]:
                best[name] = {"wall_s": wall, "events": events,
                              "sim_ns": sim_ns, "frames": frames}
    identical = len(set(observables.values())) == 1
    return {
        "scenario": "fig8_ttcp_quick" if quick else "fig8_ttcp",
        "detached": best["detached"],
        "disabled": best["disabled"],
        "enabled": best["enabled"],
        "overhead_ratio": best["disabled"]["wall_s"] / best["detached"]["wall_s"],
        "enabled_ratio": best["enabled"]["wall_s"] / best["detached"]["wall_s"],
        "max_overhead": 0.02,
        "observables_identical": identical,
    }


def bench_suite(jobs: int) -> dict:
    """Time the full quick-sized experiment suite at a given job count."""
    from repro.exec import Engine
    from repro.harness.experiments import ALL_EXPERIMENTS

    engine = Engine(jobs=jobs)
    t0 = time.perf_counter()
    for fn in ALL_EXPERIMENTS.values():
        fn(quick=True, engine=engine)
    wall = time.perf_counter() - t0
    return {"wall_s": wall, "jobs": jobs, "points": engine.points_total}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="CI-sized run: fig8 quick variant + fig9 ping")
    ap.add_argument("--repeat", type=int, default=3,
                    help="repeats per scenario, best wall time kept (default 3)")
    ap.add_argument("--suite", action="store_true",
                    help="also time the full quick experiment suite, "
                         "serial vs --jobs N (adds minutes)")
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 1,
                    help="worker count for the --suite parallel leg "
                         "(default: CPU count)")
    ap.add_argument("--out", default="BENCH_sim.json",
                    help="output path (default BENCH_sim.json)")
    ap.add_argument("--rebaseline", action="store_true",
                    help="print a BASELINE dict for this machine and exit")
    args = ap.parse_args(argv)

    names = (
        ["fig8_ttcp_quick", "fig9_ping"] if args.quick
        else ["fig8_ttcp", "fig9_ping"]
    )

    if args.rebaseline:
        out = {}
        for name in SCENARIOS:
            rec = bench(SCENARIOS[name], args.repeat)
            out[name] = {k: rec[k] for k in ("wall_s", "events", "sim_ns", "frames")}
            print(f"{name}: wall={rec['wall_s']:.3f}s events={rec['events']}")
        print(json.dumps(out, indent=1))
        return 0

    report = {"quick": args.quick, "repeat": args.repeat, "scenarios": {}}
    ok = True
    for name in names:
        base = BASELINE[name]
        cur = bench(SCENARIOS[name], args.repeat)
        unchanged = (
            cur["sim_ns"] == base["sim_ns"] and cur["frames"] == base["frames"]
        )
        ok = ok and unchanged
        speedup = base["wall_s"] / cur["wall_s"]
        report["scenarios"][name] = {
            "baseline": base,
            "current": cur,
            "speedup": speedup,
            "observables_unchanged": unchanged,
        }
        print(
            f"{name}: wall={cur['wall_s']:.3f}s "
            f"({cur['events_per_s']:,.0f} events/s, "
            f"{cur['frames_per_s']:,.0f} frames/s)  "
            f"speedup={speedup:.2f}x vs baseline  "
            f"observables {'unchanged' if unchanged else 'CHANGED'}"
        )

    fig8_key = "fig8_ttcp_quick" if args.quick else "fig8_ttcp"
    report["speedup_fig8"] = report["scenarios"][fig8_key]["speedup"]
    report["observables_unchanged"] = ok

    fc = bench_flowcache(args.quick, args.repeat)
    report["flowcache"] = fc
    ok = ok and fc["observables_identical"]
    print(
        f"flowcache ({fc['scenario']}): on={fc['cache_on']['wall_s']:.3f}s "
        f"off={fc['cache_off']['wall_s']:.3f}s  "
        f"wall speedup={fc['wall_speedup']:.2f}x  "
        f"frames/s ratio={fc['frames_per_s_ratio']:.2f}  "
        f"{fc['events_elided']} events elided  observables "
        f"{'identical' if fc['observables_identical'] else 'DIVERGED'}"
    )

    fl = bench_fluid(args.quick, args.repeat)
    report["fluid"] = fl
    print(
        f"fluid ({fl['scenario']}): on={fl['fluid_on']['wall_s']:.3f}s "
        f"off={fl['fluid_off']['wall_s']:.3f}s  "
        f"events/frame {fl['events_per_frame_off']:.2f} -> "
        f"{fl['events_per_frame_on']:.2f} "
        f"({fl['events_per_frame_reduction']:.2f}x reduction)  "
        f"strides={fl['strides']}  "
        f"elapsed ratio={fl['elapsed_ratio']:.3f} "
        f"({'in' if fl['in_tolerance'] else 'OUT OF'} tolerance)"
    )

    rl = bench_routing_lookup(args.repeat)
    report["routing_lookup"] = rl
    print(
        "routing_lookup: "
        + "  ".join(
            f"{n} routes: {rl['sizes'][n]['lookups_per_s']:,.0f}/s"
            for n in ("10", "100", "1000")
        )
        + f"  scaling(1000 vs 10)={rl['scaling_1000_vs_10']:.2f}"
    )

    ft = bench_flowcache_topo(args.quick)
    report["flowcache_topo"] = ft
    print(
        f"flowcache_topo ({ft['topology']}): hit rate={ft['hit_rate']:.3f} "
        f"({ft['hits']} hits / {ft['misses']} misses)  "
        f"convergence={ft['convergence_ms']:.2f} ms sim  "
        f"probe rtt={ft['probe_rtt_us']:.1f} us"
    )

    oo = bench_obs_overhead(args.quick, args.repeat)
    report["obs_overhead"] = oo
    ok = ok and oo["observables_identical"]
    print(
        f"obs_overhead ({oo['scenario']}): detached={oo['detached']['wall_s']:.3f}s "
        f"disabled={oo['disabled']['wall_s']:.3f}s "
        f"enabled={oo['enabled']['wall_s']:.3f}s  "
        f"disabled overhead={oo['overhead_ratio']:.3f}x "
        f"(limit {1 + oo['max_overhead']:.2f}x)  "
        f"enabled={oo['enabled_ratio']:.2f}x  observables "
        f"{'identical' if oo['observables_identical'] else 'DIVERGED'}"
    )

    fa = bench_fairness(args.quick)
    report["fairness"] = fa
    ok = ok and fa["floors_met"]
    print(
        f"fairness ({fa['scenario']}): symmetric JFI={fa['symmetric']['jfi']:.4f} "
        f"utilization={fa['symmetric']['utilization']:.3f}  "
        f"asym-RTT JFI={fa['asymmetric_rtt_200us']['jfi']:.4f}  "
        f"loss-2% utilization={fa['loss_2pct']['utilization']:.3f}  "
        f"floors {'met' if fa['floors_met'] else 'MISSED'}"
    )

    if args.suite:
        serial = bench_suite(1)
        parallel = bench_suite(max(args.jobs, 1))
        suite_speedup = serial["wall_s"] / parallel["wall_s"]
        report["suite"] = {
            "serial": serial,
            "parallel": parallel,
            "speedup": suite_speedup,
        }
        print(
            f"suite (quick, {serial['points']} points): "
            f"serial={serial['wall_s']:.1f}s "
            f"jobs={parallel['jobs']} parallel={parallel['wall_s']:.1f}s "
            f"speedup={suite_speedup:.2f}x"
        )
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
    print(f"wrote {args.out}")
    if not ok:
        print("ERROR: simulated observables diverged from baseline", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
