#!/usr/bin/env python
"""Cluster-scale smoke test: 1024 hosts, compile → build → converge → ping.

CI's ``scale-smoke`` job runs this under a wall-clock budget.  It
generates the 1024-compute-host fat-tree (k=16: 1344 simulated machines
including edge/agg/core routers, ~77k route entries), compiles it to
VNET/P route tables and control-language configuration, builds the
simulated testbed, provisions it in simulated time, and pings across
the fabric's longest path.  Exit is non-zero if any stage fails or the
probe gets no replies.

Wall-clock stage timings are printed *informationally* (they never go
into a committed artifact — CI determinism diffs forbid wall-clock in
results); the asserted facts are all simulated/deterministic:
convergence, table sizes, and the cross-fabric RTT.

Usage::

    python tools/scale_smoke.py            # 1024 hosts
    python tools/scale_smoke.py --hosts 256
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.topo import TopologyCompiler, fat_tree, probe_rtt_ns, provision  # noqa: E402


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--hosts", type=int, default=1024,
                    help="compute hosts in the fat-tree (default 1024)")
    args = ap.parse_args(argv)

    t0 = time.perf_counter()
    topo = fat_tree(args.hosts)
    t1 = time.perf_counter()
    compiled = TopologyCompiler(topo).compile()
    t2 = time.perf_counter()
    print(
        f"generate: {len(topo.hosts)} hosts ({args.hosts} compute + "
        f"{topo.n_routers} routers), {len(topo.links)} links "
        f"[{t1 - t0:.2f}s wall]"
    )
    print(
        f"compile:  {compiled.routes_total} routes "
        f"(max table {compiled.max_table}), {compiled.n_commands} commands, "
        f"signature {compiled.signature()[:12]} [{t2 - t1:.2f}s wall]"
    )

    tb = compiled.build(configure=False)
    t3 = time.perf_counter()
    print(f"build:    {len(tb.hosts)} simulated machines, "
          f"{len(tb.endpoints)} guest endpoints [{t3 - t2:.2f}s wall]")

    report = provision(tb)
    t4 = time.perf_counter()
    print(
        f"provision: converged in {report.converged_ms:.2f} ms simulated "
        f"({report.n_commands} commands) [{t4 - t3:.2f}s wall]"
    )

    rtt_ns = probe_rtt_ns(tb, 0, args.hosts - 1)
    t5 = time.perf_counter()
    print(f"probe:    cross-fabric rtt {rtt_ns / 1e3:.1f} us simulated "
          f"[{t5 - t4:.2f}s wall]")

    if not (0 < rtt_ns < 10_000_000):
        print(f"ERROR: implausible cross-fabric RTT {rtt_ns} ns", file=sys.stderr)
        return 1
    print(f"scale smoke OK ({args.hosts} hosts, {t5 - t0:.2f}s wall total)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
