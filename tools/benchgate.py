#!/usr/bin/env python
"""CI regression gate over ``BENCH_sim.json`` reports.

Compares a *fresh* simbench report (``tools/simbench.py --quick --out``)
against the *reference* report committed in the repository and fails
(exit 1) when:

* any scenario's ``observables_unchanged`` flag — or the report-level
  one — is false: the fast path must remain a pure wall-clock
  optimisation, so a changed simulated-ns or frame count is always a
  bug, never "noise";
* any scenario's speedup-over-baseline ratio regresses by more than
  ``--tolerance`` (default 15 %) relative to the reference report's
  ratio for the same scenario.

The gate compares speedup *ratios*, not raw wall seconds: both the
fresh run and the reference divide by the same pinned baseline
numbers, so machine-speed differences between the commit machine and
the CI runner cancel to first order.  Residual machine drift (cache
hierarchy, turbo behaviour) is what the tolerance absorbs; tighten it
only with a rebaselined reference from the same runner class.

Usage::

    python tools/simbench.py --quick --out /tmp/bench_fresh.json
    python tools/benchgate.py /tmp/bench_fresh.json           # vs BENCH_sim.json
    python tools/benchgate.py fresh.json --reference other.json --tolerance 0.10
"""

from __future__ import annotations

import argparse
import json
import os
import sys

DEFAULT_REFERENCE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_sim.json"
)
DEFAULT_TOLERANCE = 0.15


def load_report(path: str) -> dict:
    """Read one simbench JSON report."""
    with open(path, encoding="utf-8") as fp:
        return json.load(fp)


def gate(fresh: dict, reference: dict,
         tolerance: float = DEFAULT_TOLERANCE) -> list[str]:
    """All gate violations of ``fresh`` vs ``reference`` (empty = pass)."""
    problems: list[str] = []
    if not fresh.get("observables_unchanged", False):
        problems.append(
            "report-level observables_unchanged is false: simulated results "
            "differ from the pinned baseline"
        )
    fresh_scenarios = fresh.get("scenarios", {})
    ref_scenarios = reference.get("scenarios", {})
    for name in sorted(ref_scenarios):
        ref = ref_scenarios[name]
        cur = fresh_scenarios.get(name)
        if cur is None:
            problems.append(f"{name}: scenario missing from fresh report")
            continue
        if not cur.get("observables_unchanged", False):
            problems.append(
                f"{name}: observables changed "
                f"(sim_ns {cur['current']['sim_ns']} vs baseline "
                f"{cur['baseline']['sim_ns']}, frames "
                f"{cur['current']['frames']} vs {cur['baseline']['frames']})"
            )
        ref_speedup = ref.get("speedup", 0.0)
        cur_speedup = cur.get("speedup", 0.0)
        floor = ref_speedup * (1.0 - tolerance)
        if cur_speedup < floor:
            problems.append(
                f"{name}: speedup regressed to {cur_speedup:.3f}x "
                f"(reference {ref_speedup:.3f}x, floor {floor:.3f}x at "
                f"{tolerance:.0%} tolerance)"
            )
    for name in sorted(fresh_scenarios):
        if name not in ref_scenarios:
            problems.append(
                f"{name}: scenario absent from reference report "
                "(regenerate the committed BENCH_sim.json)"
            )
    # The per-flow fast-path cache (repro.vnet.flowcache) must stay a
    # pure wall-clock optimisation: same simulated ns and frame count
    # with the cache on and off.  Only the identity flag is gated — the
    # cache-on/off wall ratio is machine noise, unlike the pinned-
    # baseline ratios above.
    if "flowcache" in reference:
        fc = fresh.get("flowcache")
        if fc is None:
            problems.append("flowcache: section missing from fresh report")
        elif not fc.get("observables_identical", False):
            problems.append(
                "flowcache: simulated observables diverge between cache-on "
                "and cache-off runs (the cache must be timing-neutral)"
            )
    # The hybrid fluid/packet fast path must hold its headline numbers:
    # >=5x events-per-frame reduction on the bulk-TCP scenario (the
    # floor rises with the committed reference, so improvements lock
    # in), identical delivered bytes, and a completion time within the
    # documented statistical tolerance of the all-packet golden run.
    if "fluid" in reference:
        fl = fresh.get("fluid")
        ref_fl = reference["fluid"]
        if fl is None:
            problems.append("fluid: section missing from fresh report")
        else:
            floor = max(5.0,
                        ref_fl.get("events_per_frame_reduction", 0.0)
                        * (1.0 - tolerance))
            reduction = fl.get("events_per_frame_reduction", 0.0)
            if reduction < floor:
                problems.append(
                    f"fluid: events-per-frame reduction {reduction:.2f}x "
                    f"below floor {floor:.2f}x (reference "
                    f"{ref_fl.get('events_per_frame_reduction', 0.0):.2f}x)"
                )
            if not fl.get("bytes_identical", False):
                problems.append(
                    "fluid: delivered bytes differ between fluid-on and "
                    "all-packet runs (reliability broken)"
                )
            if not fl.get("in_tolerance", False):
                problems.append(
                    f"fluid: completion-time ratio "
                    f"{fl.get('elapsed_ratio', 0.0):.3f} outside the "
                    f"±{fl.get('statistical_tolerance', 0.15):.0%} "
                    "statistical tolerance vs the all-packet golden"
                )
    # Route lookup must stay ~flat in table size (the (src, dst) index).
    # A return to the linear scan shows up as scaling near 1000/10 wall
    # ratio ≈ table-size ratio, i.e. scaling ≈ 0.01; the 0.25 floor is
    # far above any machine noise while catching that collapse.
    if "routing_lookup" in reference:
        rl = fresh.get("routing_lookup")
        if rl is None:
            problems.append("routing_lookup: section missing from fresh report")
        elif rl.get("scaling_1000_vs_10", 0.0) < 0.25:
            problems.append(
                f"routing_lookup: lookup rate collapses with table size "
                f"(1000-route rate is {rl['scaling_1000_vs_10']:.3f}x the "
                f"10-route rate; floor 0.25 — linear scan regression?)"
            )
    # The fat-tree flow-cache hit rate is fully deterministic (simulated
    # probes on a generated topology), so it is gated tightly: a drop
    # means the per-flow fast path stopped covering multi-hop forwarding.
    if "flowcache_topo" in reference:
        ft = fresh.get("flowcache_topo")
        ref_ft = reference["flowcache_topo"]
        if ft is None:
            problems.append("flowcache_topo: section missing from fresh report")
        elif abs(ft.get("hit_rate", 0.0) - ref_ft.get("hit_rate", 0.0)) > 0.05:
            problems.append(
                f"flowcache_topo: hit rate {ft.get('hit_rate', 0.0):.3f} "
                f"deviates from reference {ref_ft.get('hit_rate', 0.0):.3f} "
                "by more than 0.05"
            )
    # The kernel self-profiler hook (repro.obs.profile) must be free
    # while disabled — it is left installed everywhere, so the
    # attached-but-disabled leg may cost at most max_overhead (2%) over
    # the detached leg — and profiling must never perturb simulated
    # observables (the enabled leg included).  The enabled-leg wall
    # ratio is informational only: attribution is opt-in.
    if "obs_overhead" in reference:
        oo = fresh.get("obs_overhead")
        if oo is None:
            problems.append("obs_overhead: section missing from fresh report")
        else:
            limit = 1.0 + oo.get("max_overhead", 0.02)
            ratio = oo.get("overhead_ratio", float("inf"))
            if ratio > limit:
                problems.append(
                    f"obs_overhead: disabled profiler hook costs "
                    f"{ratio:.3f}x the detached wall time "
                    f"(limit {limit:.2f}x — the hook must be free when off)"
                )
            if not oo.get("observables_identical", False):
                problems.append(
                    "obs_overhead: simulated observables diverge across "
                    "detached/disabled/enabled profiler legs (profiling "
                    "must never change simulation results)"
                )
    # Reno fairness floors are acceptance criteria, not perf numbers:
    # two symmetric competing flows must split the 1G bottleneck at
    # JFI >= 0.95 with >= 80% utilization.  Everything in the section is
    # a simulated observable (fully deterministic), so the asymmetric-RTT
    # and lossy rows are additionally held to the committed reference —
    # a drifted JFI means the congestion machinery changed behaviour.
    if "fairness" in reference:
        fa = fresh.get("fairness")
        ref_fa = reference["fairness"]
        if fa is None:
            problems.append("fairness: section missing from fresh report")
        else:
            sym = fa.get("symmetric", {})
            if sym.get("jfi", 0.0) < 0.95:
                problems.append(
                    f"fairness: symmetric JFI {sym.get('jfi', 0.0):.4f} "
                    "below the 0.95 acceptance floor"
                )
            if sym.get("utilization", 0.0) < 0.80:
                problems.append(
                    f"fairness: symmetric utilization "
                    f"{sym.get('utilization', 0.0):.3f} below the 0.80 "
                    "acceptance floor"
                )
            for key in ("symmetric", "asymmetric_rtt_200us"):
                cur_jfi = fa.get(key, {}).get("jfi", 0.0)
                ref_jfi = ref_fa.get(key, {}).get("jfi", 0.0)
                if abs(cur_jfi - ref_jfi) > 0.02:
                    problems.append(
                        f"fairness: {key} JFI {cur_jfi:.4f} deviates from "
                        f"reference {ref_jfi:.4f} by more than 0.02 "
                        "(congestion behaviour changed)"
                    )
            cur_u = fa.get("loss_2pct", {}).get("utilization", 0.0)
            ref_u = ref_fa.get("loss_2pct", {}).get("utilization", 0.0)
            if ref_u and abs(cur_u - ref_u) > tolerance * ref_u:
                problems.append(
                    f"fairness: loss-2% utilization {cur_u:.3f} deviates "
                    f"from reference {ref_u:.3f} beyond {tolerance:.0%}"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; exit 0 on pass, 1 on any gate violation."""
    parser = argparse.ArgumentParser(
        description="Fail when a fresh simbench report regresses vs the "
                    "committed reference."
    )
    parser.add_argument("fresh", help="fresh report (simbench --out PATH)")
    parser.add_argument("--reference", default=DEFAULT_REFERENCE,
                        help="reference report (default: repo BENCH_sim.json)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional speedup regression "
                             "(default 0.15)")
    args = parser.parse_args(argv)
    if not 0 <= args.tolerance < 1:
        parser.error("--tolerance must be in [0, 1)")

    fresh = load_report(args.fresh)
    reference = load_report(args.reference)
    problems = gate(fresh, reference, tolerance=args.tolerance)
    if problems:
        print("[benchgate] FAIL")
        for p in problems:
            print(f"  - {p}")
        return 1
    scen = ", ".join(
        f"{name} {fresh['scenarios'][name]['speedup']:.2f}x"
        for name in sorted(fresh.get("scenarios", {}))
    )
    print(f"[benchgate] PASS ({scen}; tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
