#!/usr/bin/env python3
"""Documentation checks run by CI.

Two checks, importable individually by the test suite:

* :func:`check_links` — every internal file reference in ``docs/*.md``
  (markdown links plus backticked ``path/to/file.md``/``.py`` mentions)
  resolves to a real file in the repository;
* :func:`check_docstrings` — every public module in ``src/repro/obs/``,
  ``src/repro/exec/``, ``src/repro/chaos/`` and ``src/repro/topo/`` has
  a module docstring,
  and every public top-level class/function in those packages has one
  too — plus the time-dimension modules (``obs/timeline.py``,
  ``obs/flows.py``, ``obs/health.py``) must exist at all, so a rename
  cannot silently drop them out of the docstring sweep.

Exit status is non-zero if any check fails.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

# Markdown link targets: [text](target), skipping external schemes.
_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)\s]*)?\)")
# Backticked repo-file mentions: `docs/foo.md`, `vnet/core.py`, ...
_TICK_REF = re.compile(r"`([A-Za-z0-9_.\-/]+\.(?:md|py))`")
_EXTERNAL = ("http://", "https://", "mailto:")


def _resolves(ref: str, md_file: Path, repo: Path) -> bool:
    roots = (
        md_file.parent,        # relative to the doc itself
        repo,                  # repo-root files (DESIGN.md, examples/...)
        repo / "docs",
        repo / "src",          # `repro/config.py`
        repo / "src" / "repro",  # module-relative (`vnet/core.py`)
        repo / "examples",     # bare example names
    )
    return any((root / ref).is_file() for root in roots)


def check_links(repo: Path) -> list[str]:
    """Unresolvable internal references in ``docs/*.md``, as error strings."""
    errors = []
    for md_file in sorted((repo / "docs").glob("*.md")):
        text = md_file.read_text(encoding="utf-8")
        refs = [t for t in _MD_LINK.findall(text) if not t.startswith(_EXTERNAL)]
        refs += _TICK_REF.findall(text)
        for ref in refs:
            if not _resolves(ref, md_file, repo):
                errors.append(f"{md_file.relative_to(repo)}: broken reference {ref!r}")
    return errors


# Modules the docstring sweep must always see; a rename or deletion here
# should fail CI rather than silently shrink the documented surface.
REQUIRED_MODULES = (
    "obs/fairness.py",
    "obs/profile.py",
    "obs/runinfo.py",
    "obs/compare.py",
    "obs/timeline.py",
    "obs/flows.py",
    "obs/health.py",
    "obs/convergence.py",
    "vnet/flowcache.py",
    "sim/fluid.py",
    "vnet/fluidpath.py",
    "topo/model.py",
    "topo/generators.py",
    "topo/compiler.py",
    "topo/provision.py",
)

# Docs that must exist: CI fails if one is deleted without updating the
# documentation contract here.
REQUIRED_DOCS = (
    "docs/congestion.md",
    "docs/performance.md",
    "docs/topology.md",
)

# Individually-swept modules from packages that are otherwise not held
# to the docstring standard (the vnet package predates it).
EXTRA_SWEEP_MODULES = (
    "vnet/flowcache.py",
    "sim/fluid.py",
    "vnet/fluidpath.py",
    "harness/experiments/fairness.py",
)


def check_docstrings(repo: Path) -> list[str]:
    """Missing docstrings in the documented packages (``obs``, ``exec``,
    ``chaos``) plus :data:`EXTRA_SWEEP_MODULES`, and missing
    :data:`REQUIRED_MODULES` / :data:`REQUIRED_DOCS`."""
    errors = []
    for required in REQUIRED_MODULES:
        if not (repo / "src" / "repro" / required).is_file():
            errors.append(f"src/repro/{required}: required module missing")
    for required in REQUIRED_DOCS:
        if not (repo / required).is_file():
            errors.append(f"{required}: required document missing")
    files = [
        py_file
        for package in ("obs", "exec", "chaos", "topo")
        for py_file in sorted((repo / "src" / "repro" / package).glob("*.py"))
    ]
    files += [
        repo / "src" / "repro" / extra
        for extra in EXTRA_SWEEP_MODULES
        if (repo / "src" / "repro" / extra).is_file()
    ]
    for py_file in files:
        rel = py_file.relative_to(repo)
        tree = ast.parse(py_file.read_text(encoding="utf-8"))
        if ast.get_docstring(tree) is None:
            errors.append(f"{rel}: missing module docstring")
        for node in tree.body:
            if not isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            if ast.get_docstring(node) is None:
                errors.append(f"{rel}: public {node.name!r} missing docstring")
    return errors


def main() -> int:
    repo = Path(__file__).resolve().parent.parent
    errors = check_links(repo) + check_docstrings(repo)
    for err in errors:
        print(err, file=sys.stderr)
    if errors:
        print(f"{len(errors)} documentation problem(s)", file=sys.stderr)
        return 1
    print(
        "docs OK: links resolve, repro.obs/repro.exec/repro.chaos/repro.topo "
        "(+ flowcache) public surfaces documented"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
