#!/usr/bin/env python3
"""VNET/P <-> VNET/U interoperability: bridging cloud and HPC.

The two systems share encapsulation and configuration languages by
design (Sect. 4.2): "the intent is that VNET/P and VNET/U be
interoperable, with VNET/P providing the fast path."  This example puts
a guest on a VNET/P host (the "HPC side") and a guest on a VNET/U host
(the "cloud side", where a user-level daemon is easy to deploy), joins
them into one overlay, and shows the guests talking as if on one LAN.

Run:  python examples/vnetp_vnetu_interop.py
"""

from repro import units
from repro.apps.ping import run_ping
from repro.apps.ttcp import run_ttcp_tcp
from repro.config import NETEFFECT_10G, default_host
from repro.harness.testbed import Endpoint, Testbed
from repro.host.machine import Host
from repro.hw.link import Link
from repro.palacios.vmm import PalaciosVMM
from repro.proto.ethernet import mac_addr
from repro.sim import Simulator
from repro.vnet.bridge import VnetBridge
from repro.vnet.core import VnetCore
from repro.vnet.overlay import (
    DestType,
    InterfaceSpec,
    LinkProto,
    LinkSpec,
    RouteEntry,
)
from repro.vnet.vnetu import DEFAULT_VNETU_PORT, VnetUDaemon
from repro.vnet.overlay import DEFAULT_VNET_PORT


def build_mixed_overlay() -> Testbed:
    sim = Simulator()
    macs = [mac_addr(1, prefix=0x5D), mac_addr(2, prefix=0x5D)]

    # HPC side: VNET/P embedded in the VMM.
    hpc = Host(sim, default_host("hpc"), NETEFFECT_10G, ip="10.0.0.1", name="hpc")
    vmm_p = PalaciosVMM(sim, hpc)
    vm_p = vmm_p.create_vm("vm-hpc", guest_ip="172.16.0.1")
    nic_p = vm_p.attach_virtio_nic(mac=macs[0], mtu=1458)
    core = VnetCore(sim, hpc)
    core.register_interface(InterfaceSpec(name="if0", mac=macs[0]), nic_p)
    VnetBridge(sim, hpc, core)

    # Cloud side: the user-level VNET/U daemon.
    cloud = Host(sim, default_host("cloud"), NETEFFECT_10G, ip="10.0.0.2", name="cloud")
    vmm_u = PalaciosVMM(sim, cloud)
    vm_u = vmm_u.create_vm("vm-cloud", guest_ip="172.16.0.2")
    nic_u = vm_u.attach_virtio_nic(mac=macs[1], mtu=1458)
    daemon = VnetUDaemon(sim, cloud)
    daemon.register_interface(InterfaceSpec(name="if0", mac=macs[1]), nic_u)

    Link(sim, hpc.nic, cloud.nic)
    hpc.add_neighbor(cloud)
    cloud.add_neighbor(hpc)

    # Compatible encapsulation: VNET/P's link points at the VNET/U
    # daemon's UDP port, and vice versa.
    core.add_link(
        LinkSpec(name="to-cloud", proto=LinkProto.UDP,
                 dst_ip=cloud.ip, dst_port=DEFAULT_VNETU_PORT)
    )
    core.add_route(RouteEntry("any", macs[1], DestType.LINK, "to-cloud"))
    core.add_route(RouteEntry("any", macs[0], DestType.INTERFACE, "if0"))
    daemon.add_link(
        LinkSpec(name="to-hpc", proto=LinkProto.UDP,
                 dst_ip=hpc.ip, dst_port=DEFAULT_VNET_PORT)
    )
    daemon.add_route(RouteEntry("any", macs[0], DestType.LINK, "to-hpc"))
    daemon.add_route(RouteEntry("any", macs[1], DestType.INTERFACE, "if0"))

    for vm, other, mac in ((vm_p, vm_u, macs[1]), (vm_u, vm_p, macs[0])):
        vm.stack.add_neighbor(other.guest_ip, mac)
    endpoints = [
        Endpoint(stack=vm_p.stack, ip=vm_p.guest_ip, host=hpc, vm=vm_p),
        Endpoint(stack=vm_u.stack, ip=vm_u.guest_ip, host=cloud, vm=vm_u),
    ]
    return Testbed(sim=sim, config="vnetp<->vnetu", hosts=[hpc, cloud],
                   endpoints=endpoints, cores=[core], daemons=[daemon])


def main() -> None:
    print("== One overlay, two implementations ==\n")
    tb = build_mixed_overlay()
    hpc_guest, cloud_guest = tb.endpoints
    print(f"HPC guest  {hpc_guest.ip} behind VNET/P (in-VMM fast path)")
    print(f"cloud guest {cloud_guest.ip} behind VNET/U (user-level daemon)\n")

    ping = run_ping(hpc_guest, cloud_guest, count=30)
    print(f"cross-system ping RTT: {ping.avg_rtt_us:.0f} us")

    tb2 = build_mixed_overlay()
    tcp = run_ttcp_tcp(tb2.endpoints[0], tb2.endpoints[1], total_bytes=5 * units.MB)
    print(f"cross-system TCP: {tcp.mbps:.0f} Mbps")
    print("\nthe guests see one Ethernet LAN; the user-level hop dominates "
          "the path cost, which is precisely why VNET/P exists")


if __name__ == "__main__":
    main()
