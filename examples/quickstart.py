#!/usr/bin/env python3
"""Quickstart: two VMs on two hosts, bridged by a VNET/P overlay.

Builds the paper's two-node testbed (Fig. 1), shows the overlay
configuration through the VNET control language, and measures ping
latency plus TCP throughput between the guests — once over VNET/P and
once natively for comparison.

Run:  python examples/quickstart.py
"""

from repro import units
from repro.apps.ping import run_ping
from repro.apps.ttcp import run_ttcp_tcp
from repro.config import NETEFFECT_10G
from repro.harness.testbed import build_native, build_vnetp
from repro.vnet.lang import parse_line


def main() -> None:
    print("== VNET/P two-node testbed (10 Gbps Ethernet) ==\n")
    vnetp = build_vnetp(nic_params=NETEFFECT_10G)

    # The overlay was configured through the same control language
    # VNET/U tools speak; inspect it:
    control = vnetp.controls[0]
    print("overlay configuration on host h0:")
    for line in control.apply(parse_line("list links")):
        print(f"  {line}")
    for line in control.apply(parse_line("list routes")):
        print(f"  {line}")
    print()

    guest_a, guest_b = vnetp.endpoints
    print(f"guest A: {guest_a.ip} (VM {guest_a.vm.name} on host {guest_a.host.name})")
    print(f"guest B: {guest_b.ip} (VM {guest_b.vm.name} on host {guest_b.host.name})\n")

    ping = run_ping(guest_a, guest_b, data_size=56, count=50)
    print(f"ping  {guest_b.ip}: avg RTT {ping.avg_rtt_us:.1f} us "
          f"(min {ping.min_rtt_us:.1f}, max {ping.max_rtt_us:.1f})")

    vnetp2 = build_vnetp(nic_params=NETEFFECT_10G)
    tcp = run_ttcp_tcp(vnetp2.endpoints[0], vnetp2.endpoints[1], total_bytes=40 * units.MB)
    print(f"ttcp  TCP throughput: {tcp.gbps:.2f} Gbps\n")

    # Native comparison (same kernels, no virtualization).
    native = build_native(nic_params=NETEFFECT_10G)
    nping = run_ping(native.endpoints[0], native.endpoints[1], data_size=56, count=50)
    native2 = build_native(nic_params=NETEFFECT_10G)
    ntcp = run_ttcp_tcp(native2.endpoints[0], native2.endpoints[1], total_bytes=40 * units.MB)
    print(f"native ping RTT {nping.avg_rtt_us:.1f} us, TCP {ntcp.gbps:.2f} Gbps")
    print(f"VNET/P achieves {tcp.gbps / ntcp.gbps:.0%} of native throughput "
          f"at {ping.avg_rtt_us / nping.avg_rtt_us:.1f}x native latency")


if __name__ == "__main__":
    main()
