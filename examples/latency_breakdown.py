#!/usr/bin/env python3
"""Where do VNET/P's microseconds go?

Prints the analytic per-stage decomposition of the one-way small-packet
path (native and VNET/P, 10 Gbps), validates it against the event-driven
simulation, and shows what the VNET/P+ cut-through technique removes.

Run:  python examples/latency_breakdown.py
"""

from repro.apps.ping import run_ping
from repro.config import NETEFFECT_10G, OsNoiseParams, default_host, default_tuning
from repro.harness.breakdown import (
    native_one_way_breakdown,
    render,
    total_ns,
    vnetp_one_way_breakdown,
)
from repro.harness.testbed import build_native, build_vnetp
from repro.obs import Observability, recorded_one_way_breakdown
from repro.obs.breakdown import render_recorded


def main() -> None:
    print("== Native one-way path (10G, 56 B ICMP) ==\n")
    native = native_one_way_breakdown(NETEFFECT_10G)
    print(render(native))

    print("\n== VNET/P one-way path (10G, 56 B ICMP) ==\n")
    vnetp = vnetp_one_way_breakdown(NETEFFECT_10G)
    print(render(vnetp))

    overhead = (total_ns(vnetp) - total_ns(native)) / 1000
    vmm_share = sum(s.ns for s in vnetp if s.where == "vmm") / total_ns(vnetp)
    print(f"\nvirtualization adds {overhead:.1f} us one-way; "
          f"{vmm_share:.0%} of the VNET/P path is VMM-side work")

    # Cross-check against the event-driven simulation.
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    measured = run_ping(tb.endpoints[0], tb.endpoints[1], count=50)
    print(f"analytic RTT {2 * total_ns(vnetp) / 1000:.1f} us vs "
          f"simulated {measured.avg_rtt_us:.1f} us "
          f"(jitter stdev {measured.rtt_ns.stdev / 1000:.2f} us from OS noise)")

    # The same table, *measured*: record per-packet spans on a noise-free
    # testbed and rebuild the breakdown from what actually happened.  (To
    # see this as a timeline, run `python -m repro obs --chrome trace.json`
    # and load the file in chrome://tracing or Perfetto.)
    print("\n== VNET/P one-way path, measured from recorded spans ==\n")
    quiet = build_vnetp(
        nic_params=NETEFFECT_10G,
        host_params=default_host().with_(noise=OsNoiseParams(jitter_max_ns=0)),
    )
    obs = Observability.of(quiet.sim)
    obs.spans.enabled = True
    run_ping(quiet.endpoints[0], quiet.endpoints[1], count=3)
    recorded = recorded_one_way_breakdown(
        obs.spans, quiet.endpoints[0].stack.name, quiet.endpoints[1].stack.name
    )
    print(render_recorded(recorded))
    delta = sum(s.ns for s in recorded) - total_ns(vnetp)
    print(f"\nrecorded total matches the analytic model to {abs(delta)} ns")

    # Cut-through matters for big packets, where the copy dominates.
    big = vnetp_one_way_breakdown(NETEFFECT_10G, payload=8900)
    big_ct = vnetp_one_way_breakdown(
        NETEFFECT_10G, payload=8900, tuning=default_tuning(cut_through=True)
    )
    print(f"\nfor 8900 B payloads, VNET/P+ cut-through takes the copies off "
          f"the critical path: {total_ns(big) / 1000:.1f} -> "
          f"{total_ns(big_ct) / 1000:.1f} us one-way")


if __name__ == "__main__":
    main()
