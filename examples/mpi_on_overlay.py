#!/usr/bin/env python3
"""An MPI application on a virtual cluster: allreduce + halo exchange.

Runs a small iterative stencil-style MPI program (compute + halo
exchange + allreduce per iteration, the shape of most of the NAS suite)
on a 6-node cluster, comparing Native and VNET/P at 10 Gbps using the
calibrated flow transports — the same machinery the Fig. 12-14
reproductions use.

Run:  python examples/mpi_on_overlay.py
"""

from repro import units
from repro.apps.hpcc import flow_world
from repro.harness.calibrate import flow_model_for


ITERATIONS = 40
HALO_BYTES = 256 * units.KB
COMPUTE_NS = 400 * units.US
NPROCS = 24


def stencil_program(comm):
    """One rank of the stencil: compute, exchange halos, reduce a norm."""
    sim = comm.sim
    yield from comm.barrier()
    start = sim.now
    for it in range(ITERATIONS):
        yield from comm.compute(COMPUTE_NS)
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        req = comm.isend(right, HALO_BYTES, tag=it)
        yield from comm.recv(left, it)
        yield from req.wait()
        yield from comm.allreduce(8)
    return sim.now - start


def main() -> None:
    print(f"== {NPROCS}-process MPI stencil on a 6-node virtual cluster ==\n")
    results = {}
    for cfg in ("native-10g", "vnetp-10g"):
        model = flow_model_for(cfg)
        world = flow_world(model, NPROCS)
        per_rank = world.run(stencil_program)
        runtime_ms = max(per_rank) / units.MS
        results[cfg] = runtime_ms
        comm_note = f"(alpha {model.alpha_ns / 1000:.0f} us, beta {model.beta_Bps / 1e6:.0f} MB/s)"
        print(f"{cfg:11}: {runtime_ms:8.2f} ms for {ITERATIONS} iterations {comm_note}")
    overhead = results["vnetp-10g"] / results["native-10g"] - 1
    print(f"\nVNET/P adds {overhead:.1%} to this application's runtime")
    print("(compute-dominated applications see far less than the raw "
          "microbenchmark overhead — the Fig. 14 story)")


if __name__ == "__main__":
    main()
