#!/usr/bin/env python3
"""Live VM migration with uninterrupted connectivity — plus adaptation.

The VNET model's defining promises (Sect. 3): VMs are *location
independent* (migrate anywhere, keep talking) and the overlay is the
*locus of adaptation*.  This example runs a continuous TCP transfer
into a VM, live-migrates that VM to a different host mid-transfer, lets
the adaptation engine notice the new heavy flow and optimise routing,
and shows the transfer completing untouched.

Run:  python examples/live_migration.py
"""

from repro import units
from repro.config import NETEFFECT_10G
from repro.harness.testbed import build_vnetp
from repro.vnet import AdaptationEngine, TrafficMonitor, migrate_vm


def main() -> None:
    print("== Live migration over the overlay ==\n")
    tb = build_vnetp(n_hosts=3, nic_params=NETEFFECT_10G)
    sim = tb.sim
    a, b, c = tb.endpoints
    monitors = [TrafficMonitor(sim, core) for core in tb.cores]
    engine = AdaptationEngine(sim, tb.cores, tb.controls, min_flow_bytes=64 * 1024)
    done = {}

    def server():
        listener = b.stack.tcp_listen(5001)
        conn = yield from listener.accept()
        done["received"] = yield from conn.drain()

    def client():
        conn = yield from a.stack.tcp_connect(b.ip, 5001)
        yield from conn.send(20 * units.MB)
        yield from conn.close()
        done["retransmits"] = conn.retransmits

    def migration():
        yield sim.timeout(2 * units.MS)
        print(f"t={sim.now / units.MS:6.2f} ms  migrating {b.vm.name} "
              f"from {tb.hosts[1].name} to {tb.hosts[2].name} ...")
        result = yield from migrate_vm(
            sim, tb.cores, b.vm, b.vm.virtio_nics[0],
            src_idx=1, dst_idx=2, migration_bw_Bps=100e9,
        )
        print(f"t={sim.now / units.MS:6.2f} ms  migration complete "
              f"(blackout {result.blackout_ns / units.MS:.2f} ms)")
        engine.refresh_directory()
        changes = engine.adapt()
        print(f"t={sim.now / units.MS:6.2f} ms  adaptation engine applied "
              f"{changes} routing change(s)")

    sim.process(server())
    sim.process(client())
    sim.process(migration())
    sim.run()

    print(f"\ntransfer completed: {done['received'] / units.MB:.0f} MB received, "
          f"{done['retransmits']} TCP retransmissions covered the blackout")
    print(f"guest {b.ip} kept its address and connections; only the overlay moved")
    top = monitors[0].top_flows(1)[0]
    print(f"observed top flow at host h0: {top.src} -> {top.dst}, "
          f"{top.bytes / units.MB:.0f} MB")


if __name__ == "__main__":
    main()
