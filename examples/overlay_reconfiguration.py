#!/usr/bin/env python3
"""Dynamic overlay reconfiguration: rerouting traffic around a waypoint.

The VNET model's point (Sect. 3) is that the overlay is a locus of
adaptation: an agent such as VADAPT can reshape topology and routing at
run time, transparently to the guests.  This example builds a three-host
overlay where guest A initially reaches guest B *via a waypoint* on host
C (as a wide-area deployment might, for NAT traversal or traffic
engineering), measures latency, then uses the control language to
install a direct overlay link — exactly the optimization an adaptation
engine would perform once it detects heavy traffic between A and B.

Run:  python examples/overlay_reconfiguration.py
"""

from repro.apps.ping import run_ping
from repro.config import NETEFFECT_10G
from repro.harness.testbed import build_vnetp


def main() -> None:
    print("== Overlay reconfiguration via the control language ==\n")
    tb = build_vnetp(n_hosts=3, nic_params=NETEFFECT_10G)
    a, b, c = tb.endpoints
    ctl_a, ctl_b, _ = tb.controls
    mac_b = b.vm.virtio_nics[0].mac
    mac_a = a.vm.virtio_nics[0].mac

    # Reroute A->B and B->A through the waypoint on host 2 (the full
    # mesh built by the harness is torn down for this pair first).
    ctl_a.apply_config(
        f"""
        del route src any dst {mac_b}
        add route src any dst {mac_b} link to2
        """
    )
    ctl_b.apply_config(
        f"""
        del route src any dst {mac_a}
        add route src any dst {mac_a} link to2
        """
    )
    # Host 2's core already has interface+link routes for A and B, so it
    # forwards overlay packets onward (an overlay waypoint).

    via_waypoint = run_ping(a, b, count=50)
    print(f"A -> B via waypoint C: avg RTT {via_waypoint.avg_rtt_us:.1f} us")

    # The adaptation step: install direct routes again, live.
    ctl_a.apply_config(
        f"""
        del route src any dst {mac_b}
        add route src any dst {mac_b} link to1
        """
    )
    ctl_b.apply_config(
        f"""
        del route src any dst {mac_a}
        add route src any dst {mac_a} link to0
        """
    )
    direct = run_ping(a, b, count=50)
    print(f"A -> B direct:         avg RTT {direct.avg_rtt_us:.1f} us")
    saved = via_waypoint.avg_rtt_us - direct.avg_rtt_us
    print(f"\nreconfiguration saved {saved:.1f} us per round trip "
          f"({saved / via_waypoint.avg_rtt_us:.0%}) without touching the guests")


if __name__ == "__main__":
    main()
