#!/usr/bin/env python3
"""Inferring an application's communication topology from the overlay.

The Virtuoso vision (paper Sect. 3): the VNET layer watches the traffic
it carries, infers the parallel application's communication pattern,
and adapts the overlay to match — all without touching the guests.
This example runs three different synthetic applications over a 5-host
VNET/P overlay and shows the monitor classifying each correctly.

Run:  python examples/topology_inference.py
"""

from repro.config import NETEFFECT_10G
from repro.harness.testbed import build_vnetp
from repro.proto.base import Blob
from repro.vnet import TrafficMonitor, infer_topology


def drive(tb, pairs, nbytes=30_000, rounds=4):
    """Send UDP bursts between endpoint index pairs."""
    sim = tb.sim
    for i, ep in enumerate(tb.endpoints):
        ep.stack.udp_socket(port=7000 + i)

    def tx(src, dst):
        sock = src.stack.udp_socket()
        for _ in range(rounds):
            yield from sock.sendto(Blob(nbytes), dst.ip, 7000 + tb.endpoints.index(dst))

    procs = [sim.process(tx(tb.endpoints[s], tb.endpoints[d])) for s, d in pairs]
    sim.run(until=sim.all_of(procs))
    sim.run()


def main() -> None:
    n = 5
    apps = {
        "nearest-neighbour stencil": [(i, (i + 1) % n) for i in range(n)],
        "master-worker": [(0, j) for j in range(1, n)] + [(j, 0) for j in range(1, n)],
        "spectral (transpose-heavy)": [
            (i, j) for i in range(n) for j in range(n) if i != j
        ],
    }
    for name, pattern in apps.items():
        tb = build_vnetp(n_hosts=n, nic_params=NETEFFECT_10G)
        monitors = [TrafficMonitor(tb.sim, core) for core in tb.cores]
        drive(tb, pattern)
        inferred = infer_topology(monitors)
        print(f"{name:28} -> inferred {inferred.describe()}")
    print("\nan adaptation engine would now reshape each overlay to match "
          "(see examples/overlay_reconfiguration.py)")


if __name__ == "__main__":
    main()
