#!/usr/bin/env python3
"""Bridging the cloud and HPC: one overlay across unequal networks.

The paper's title scenario: a computation spans VMs in a commodity
"cloud" (here a host on 1 Gbps Ethernet) and VMs on a tightly-coupled
"cluster" (hosts on 10 Gbps), all on one virtual LAN.  The overlay makes
the split invisible to the guests — and when the slow member becomes the
bottleneck, the adaptive answer is to *migrate it into the cluster*,
which this example does live.

Run:  python examples/bridging_cloud_hpc.py
"""

from repro import units
from repro.apps.ttcp import run_ttcp_tcp
from repro.config import BROADCOM_1G, NETEFFECT_10G, default_host
from repro.harness.testbed import Endpoint, Testbed
from repro.host.machine import Host
from repro.hw.switch import Switch, SwitchParams
from repro.palacios.vmm import PalaciosVMM
from repro.proto.ethernet import mac_addr
from repro.sim import Simulator
from repro.vnet.bridge import VnetBridge
from repro.vnet.core import VnetCore
from repro.vnet.migration import migrate_vm
from repro.vnet.overlay import (
    DEFAULT_VNET_PORT,
    DestType,
    InterfaceSpec,
    LinkProto,
    LinkSpec,
    RouteEntry,
)


def build_mixed_site() -> Testbed:
    """Two 10G cluster hosts + one 1G cloud host on one switch/overlay."""
    sim = Simulator()
    nic_by_host = [NETEFFECT_10G, NETEFFECT_10G, BROADCOM_1G]
    hosts, vms, cores = [], [], []
    macs = [mac_addr(i + 1, prefix=0x5F) for i in range(3)]
    switch = Switch(sim, SwitchParams(port_rate_bps=10e9))
    for i, nic_params in enumerate(nic_by_host):
        host = Host(sim, default_host(f"site{i}"), nic_params,
                    ip=f"10.0.0.{i + 1}", name=f"site{i}")
        switch.attach(host.nic)
        vmm = PalaciosVMM(sim, host)
        vm = vmm.create_vm(f"vm{i}", guest_ip=f"172.16.0.{i + 1}")
        # The guest MTU must clear every physical MTU on the overlay path.
        nic = vm.attach_virtio_nic(mac=macs[i], mtu=1458)
        core = VnetCore(sim, host)
        core.register_interface(InterfaceSpec(name="if0", mac=macs[i]), nic)
        VnetBridge(sim, host, core)
        hosts.append(host)
        vms.append(vm)
        cores.append(core)
    for a in hosts:
        for b in hosts:
            if a is not b:
                a.add_neighbor(b)
    for i, core in enumerate(cores):
        for j in range(3):
            if i == j:
                continue
            core.add_link(LinkSpec(name=f"to{j}", proto=LinkProto.UDP,
                                   dst_ip=hosts[j].ip, dst_port=DEFAULT_VNET_PORT))
            core.add_route(RouteEntry("any", macs[j], DestType.LINK, f"to{j}"))
        core.add_route(RouteEntry("any", macs[i], DestType.INTERFACE, "if0"))
    for i, vm in enumerate(vms):
        for j, other in enumerate(vms):
            if i != j:
                vm.stack.add_neighbor(other.guest_ip, macs[j])
    endpoints = [Endpoint(stack=vm.stack, ip=vm.guest_ip, host=hosts[i], vm=vm)
                 for i, vm in enumerate(vms)]
    return Testbed(sim=sim, config="cloud+hpc", hosts=hosts,
                   endpoints=endpoints, switch=switch, cores=cores)


def main() -> None:
    print("== One overlay across a 10G cluster and a 1G cloud host ==\n")
    tb = build_mixed_site()
    cluster_a, cluster_b, cloud = tb.endpoints

    fast = run_ttcp_tcp(cluster_a, cluster_b, total_bytes=8 * units.MB)
    print(f"cluster VM <-> cluster VM: {fast.mbps:7.0f} Mbps")
    tb = build_mixed_site()
    cluster_a, cluster_b, cloud = tb.endpoints
    slow = run_ttcp_tcp(cluster_a, cloud, total_bytes=4 * units.MB)
    print(f"cluster VM <-> cloud VM:   {slow.mbps:7.0f} Mbps "
          f"(the 1 Gbps uplink gates the whole pair)\n")

    # Adaptive response: migrate the cloud VM into the cluster, live.
    tb = build_mixed_site()
    cluster_a, cluster_b, cloud = tb.endpoints
    sim = tb.sim

    def do_migration():
        result = yield from migrate_vm(
            sim, tb.cores, cloud.vm, cloud.vm.virtio_nics[0],
            src_idx=2, dst_idx=1, migration_bw_Bps=1.0e9,
        )
        return result

    p = sim.process(do_migration())
    result = sim.run(until=p)
    print(f"migrated {cloud.vm.name} from {tb.hosts[2].name} (1G) to "
          f"{tb.hosts[1].name} (10G) in {(result.finished_ns - result.started_ns) / units.MS:.0f} ms "
          f"(blackout {result.blackout_ns / units.MS:.0f} ms)")
    after = run_ttcp_tcp(cluster_a, cloud, total_bytes=8 * units.MB)
    print(f"cluster VM <-> (ex-)cloud VM: {after.mbps:.0f} Mbps — "
          f"{after.mbps / slow.mbps:.1f}x faster, same guest, same IP, "
          f"no reconfiguration inside the VM")


if __name__ == "__main__":
    main()
