#!/usr/bin/env python3
"""Sensitivity analysis: which costs drive VNET/P's overheads?

Sweeps the two parameters the calibration (docs/calibration.md) claims
carry the 10G results — the in-VMM copy bandwidth (throughput ceiling)
and the VM exit cost (latency) — and shows each moves its own metric
while barely touching the other.

Run:  python examples/sensitivity.py
"""

from repro.config import NETEFFECT_10G
from repro.harness.sweep import render_sweep, sweep_host_param


def main() -> None:
    print("== What limits VNET/P's 10G throughput? ==\n")
    points = sweep_host_param(
        "vnet_costs.copy_bw_Bps",
        [0.6e9, 1.1e9, 2.2e9, 4.4e9],
        nic_params=NETEFFECT_10G,
    )
    print(render_sweep("vnet_costs.copy_bw_Bps", points))
    gain = points[-1].udp_gbps / points[0].udp_gbps
    lat_shift = points[-1].rtt_us / points[0].rtt_us
    print(f"\n4x more copy bandwidth: {gain:.1f}x throughput, "
          f"{lat_shift:.2f}x latency (copies barely sit on the small-packet path)")

    print("\n== What drives VNET/P's latency? ==\n")
    points = sweep_host_param(
        "vmm.exit_ns",
        [600, 1_200, 2_400, 4_800],
        nic_params=NETEFFECT_10G,
    )
    print(render_sweep("vmm.exit_ns", points))
    lat = points[-1].rtt_us - points[0].rtt_us
    print(f"\n8x costlier exits add {lat:.0f} us RTT — the paper's point that "
          f"latency waits on better interrupt/exit hardware (or ELI-style "
          f"software), while throughput is a memory/copy story")


if __name__ == "__main__":
    main()
