"""Fig. 16: HPCC application benchmarks over IPoIB."""

from repro.harness.experiments import fig16


def test_fig16_ipoib_apps(run_experiment):
    result = run_experiment(fig16)
    for row in result.rows:
        gups_ratio = row["gups_vnetp"] / row["gups_native"]
        fft_ratio = row["fft_vnetp"] / row["fft_native"]
        # Paper: RandomAccess 75-80 % of native; FFT 30-45 %.  FFT suffers
        # most because the untuned IPoIB path is latency- and
        # incast-sensitive.
        assert 0.50 < gups_ratio < 0.95, f"GUPs ratio {gups_ratio:.0%}"
        assert 0.25 < fft_ratio < 0.80, f"FFT ratio {fft_ratio:.0%}"
        assert fft_ratio < gups_ratio + 0.10, "FFT degrades at least as much as GUPs"
    # Scaling is preserved.
    assert result.rows[-1]["gups_vnetp"] > result.rows[0]["gups_vnetp"]
