"""Fig. 9: ICMP round-trip latency vs packet size."""

from repro.harness.experiments import fig09


def test_fig09_latency(run_experiment):
    result = run_experiment(fig09)
    small = result.rows[0]

    # Paper anchors: VNET/P-10G small-packet RTT ~130 us, ~2-3x native;
    # VNET/P-1G ~1.5-2x native.
    assert 100 < small["vnetp_10g_us"] < 170
    ratio_10g = small["vnetp_10g_us"] / small["native_10g_us"]
    ratio_1g = small["vnetp_1g_us"] / small["native_1g_us"]
    assert 2.0 < ratio_10g < 3.5, f"10G latency ratio {ratio_10g:.2f}"
    assert 1.3 < ratio_1g < 2.5, f"1G latency ratio {ratio_1g:.2f}"

    # Latency grows with packet size, more steeply on 1G.
    big = result.rows[-1]
    assert big["vnetp_1g_us"] > small["vnetp_1g_us"]
    assert big["vnetp_10g_us"] > small["vnetp_10g_us"]
    growth_1g = big["native_1g_us"] - small["native_1g_us"]
    growth_10g = big["native_10g_us"] - small["native_10g_us"]
    assert growth_1g > growth_10g
