"""Fig. 14: the NAS Parallel Benchmark table."""

from repro.harness.experiments import fig14


def test_fig14_nas(run_experiment):
    result = run_experiment(fig14)
    by_cell = {r["cell"]: r for r in result.rows}

    # EP (no communication) achieves native performance everywhere.
    ep = by_cell["ep.B.16"]
    assert ep["ratio_1g"] > 0.98 and ep["ratio_10g"] > 0.98

    # Most benchmarks exceed 90 % of native even at 10G; the overall
    # claim is "in excess of 95 % for most of the NAS benchmarks".
    ratios_10g = [r["ratio_10g"] for r in result.rows]
    assert sum(1 for x in ratios_10g if x > 0.90) >= len(ratios_10g) * 0.6

    # The latency-sensitive benchmarks (LU, MG, FT) show the largest
    # degradation at 10G; EP/IS/BT/SP the smallest.
    assert by_cell["lu.B.16"]["ratio_10g"] < by_cell["bt.B.16"]["ratio_10g"]
    assert by_cell["lu.B.16"]["ratio_10g"] < by_cell["is.B.16"]["ratio_10g"]
    assert by_cell["mg.B.16"]["ratio_10g"] < by_cell["ep.B.16"]["ratio_10g"]
    assert by_cell["ft.B.16"]["ratio_10g"] < by_cell["sp.B.16"]["ratio_10g"]

    # Every cell is within a sane band of the paper's ratio (+/- 15 pp).
    for r in result.rows:
        for net in ("ratio_1g", "ratio_10g"):
            ours, theirs = r[net], r[f"paper_{net}"]
            assert abs(ours - theirs) < 0.25, (
                f"{r['cell']} {net}: ours {ours:.0%} vs paper {theirs:.0%}"
            )
