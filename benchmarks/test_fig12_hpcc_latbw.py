"""Fig. 12: HPCC latency-bandwidth across 8-24 processes."""

from repro.harness.experiments import fig12


def test_fig12_hpcc_latbw(run_experiment):
    result = run_experiment(fig12)
    for row in result.rows:
        n1g, v1g = row["native-1g"], row["vnetp-1g"]
        n10g, v10g = row["native-10g"], row["vnetp-10g"]
        # 1G: bandwidths near-native, latency 1.2-2x.
        assert v1g["pingpong_bw_MBps"] > 0.85 * n1g["pingpong_bw_MBps"]
        lat1 = v1g["pingpong_lat_us"] / n1g["pingpong_lat_us"]
        assert 1.1 < lat1 < 2.5, f"1G latency ratio {lat1:.2f}"
        # 10G: bandwidth 60-85 % of native, latency 2-3x.
        bw10 = v10g["pingpong_bw_MBps"] / n10g["pingpong_bw_MBps"]
        lat10 = v10g["pingpong_lat_us"] / n10g["pingpong_lat_us"]
        assert 0.55 < bw10 < 0.90, f"10G pingpong bw ratio {bw10:.0%}"
        assert 1.8 < lat10 < 3.5, f"10G latency ratio {lat10:.2f}"
        # Ring bandwidths degrade similarly.
        ring10 = v10g["random_ring_bw_MBps"] / n10g["random_ring_bw_MBps"]
        assert 0.5 < ring10 < 0.95

    # Scaling tracks native: summed ring bandwidth grows with processes.
    first, last = result.rows[0], result.rows[-1]
    for cfg in ("native-10g", "vnetp-10g"):
        assert last[cfg]["natural_ring_bw_MBps"] > first[cfg]["natural_ring_bw_MBps"]
