"""Beyond the paper: the remaining HPCC suite components."""

from repro.harness.experiments import extra_hpcc


def test_extra_hpcc(run_experiment):
    result = run_experiment(extra_hpcc)
    by_name = {r["benchmark"]: r for r in result.rows}
    # Node-local benchmarks are untouched by the overlay.
    assert by_name["EP-STREAM"]["ratio"] > 0.98
    assert by_name["EP-DGEMM"]["ratio"] > 0.98
    # HPL tolerates the overlay better than the transfer-bound PTRANS.
    assert by_name["HPL"]["ratio"] > by_name["PTRANS"]["ratio"]
    assert 0.5 < by_name["PTRANS"]["ratio"] < 0.95
