"""Sect. 6.3 numbers: VNET/P for Kitten over InfiniBand."""

from repro.harness.experiments import sec63_kitten


def test_sec63_kitten(run_experiment):
    result = run_experiment(sec63_kitten)
    row = result.rows[0]
    # Paper: 4.0 Gbps end-to-end vs 6.5 Gbps native IPoIB-RC.
    assert 3.2 < row["kitten_gbps"] < 4.8, f"{row['kitten_gbps']:.1f} Gbps"
    assert 5.5 < row["native_gbps"] < 7.5, f"{row['native_gbps']:.1f} Gbps"
    ratio = row["kitten_gbps"] / row["native_gbps"]
    assert 0.5 < ratio < 0.75, f"ratio {ratio:.0%}"
    # Kitten's low-noise environment: an order of magnitude less jitter
    # than the Linux embedding.
    assert row["kitten_jitter_us"] < row["linux_jitter_us"] / 5
