"""Sect. 6.1 text numbers: VNET/P over IPoIB (untuned)."""

from repro.harness.experiments import sec61_infiniband


def test_sec61_infiniband(run_experiment):
    result = run_experiment(sec61_infiniband)
    row = result.rows[0]
    # Paper: VNET/P ping ~155 us; ttcp ~3.6 Gbps; native IPoIB is several
    # Gbps faster with much lower latency.
    assert 90 < row["vnetp_ping_us"] < 220, f"{row['vnetp_ping_us']:.0f} us"
    assert 3.0 < row["vnetp_gbps"] < 5.5, f"{row['vnetp_gbps']:.1f} Gbps"
    assert row["native_gbps"] > row["vnetp_gbps"] * 1.2
    assert row["vnetp_ping_us"] > row["native_ping_us"] * 1.5
