"""Ablation: the VNET/P+ techniques (optimistic interrupts, cut-through)."""

from repro.harness.experiments import abl_vnetp_plus


def test_abl_vnetp_plus(run_experiment):
    result = run_experiment(abl_vnetp_plus)
    rows = {r["config"]: r for r in result.rows}
    base = rows["VNET/P"]
    ct = rows["+ cut-through"]
    full = rows["+ optimistic irq"]

    # Cut-through takes the packet copy off the serial path: throughput
    # climbs from ~74 % toward native (VNET/P+ reports native).
    assert ct["native_fraction"] > base["native_fraction"] + 0.10
    assert full["native_fraction"] > 0.85
    # Neither technique may hurt latency materially.
    assert full["rtt_us"] < base["rtt_us"] * 1.1
