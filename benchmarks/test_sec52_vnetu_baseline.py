"""Sect. 5.2 text numbers: the VNET/U user-level baseline."""

from repro.harness.experiments import sec52_vnetu


def test_sec52_vnetu_baseline(run_experiment):
    result = run_experiment(sec52_vnetu)
    palacios, vmware = result.rows
    # Paper: 71 MB/s @ 0.88 ms on Palacios; 35 MB/s on VMware.
    assert 55 < palacios["MBps"] < 90, f"{palacios['MBps']:.0f} MB/s"
    assert 0.6 < palacios["rtt_ms"] < 1.2, f"{palacios['rtt_ms']:.2f} ms"
    assert 25 < vmware["MBps"] < 50, f"{vmware['MBps']:.0f} MB/s"
    # The Palacios custom tap roughly doubles VNET/U's bandwidth.
    assert palacios["MBps"] > 1.5 * vmware["MBps"]
