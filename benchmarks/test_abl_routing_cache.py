"""Ablation: the routing hash cache over linear table scans (Sect. 4.3)."""

from repro.harness.experiments import abl_routing_cache


def test_abl_routing_cache(run_experiment):
    result = run_experiment(abl_routing_cache)
    cached = {r["routes"]: r for r in result.rows if r["cache"]}
    plain = {r["routes"]: r for r in result.rows if not r["cache"]}
    sizes = sorted(cached)
    big, small = sizes[-1], sizes[0]

    # With the cache, throughput is flat as the table grows.
    assert cached[big]["udp_gbps"] > cached[small]["udp_gbps"] * 0.9
    # Without it, the linear scan degrades the data path markedly.
    assert plain[big]["udp_gbps"] < plain[small]["udp_gbps"] * 0.8
    assert plain[big]["rtt_us"] > cached[big]["rtt_us"] * 1.2
    # The cache actually hits in the common case.
    assert cached[big]["hit_rate"] > 0.9
