"""Ablation: guest-driven vs VMM-driven vs adaptive dispatch (Fig. 6)."""

from repro.harness.experiments import abl_adaptive_mode


def test_abl_adaptive_mode(run_experiment):
    result = run_experiment(abl_adaptive_mode)
    rows = {r["mode"]: r for r in result.rows}
    guest, vmm, adaptive = rows["guest-driven"], rows["vmm-driven"], rows["adaptive"]

    # Guest-driven minimises latency; VMM-driven maximises throughput.
    assert guest["rtt_us"] <= vmm["rtt_us"]
    assert vmm["udp_gbps"] > guest["udp_gbps"] * 1.2
    # VMM-driven suppresses kick exits; guest-driven kicks per packet.
    assert vmm["kicks_per_pkt"] < 0.05
    assert guest["kicks_per_pkt"] > 0.9
    # Adaptive matches guest-driven latency.
    assert adaptive["rtt_us"] <= guest["rtt_us"] * 1.1
