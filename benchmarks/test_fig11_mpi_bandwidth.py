"""Fig. 11: IMB PingPong one-way + SendRecv bidirectional bandwidth."""

from repro.harness.experiments import fig11


def test_fig11_mpi_bandwidth(run_experiment):
    result = run_experiment(fig11)
    big = result.rows[-1]

    # Paper anchors (beyond 256K): one-way ~74 % of native (~510 MB/s),
    # bidirectional ~62 % of native.
    oneway_ratio = big["oneway_vnetp"] / big["oneway_native"]
    bidir_ratio = big["bidir_vnetp"] / big["bidir_native"]
    assert 0.65 < oneway_ratio < 0.85, f"one-way ratio {oneway_ratio:.0%}"
    assert 0.40 < bidir_ratio < 0.75, f"bidirectional ratio {bidir_ratio:.0%}"
    assert 400 < big["oneway_vnetp"] < 650, f"{big['oneway_vnetp']:.0f} MB/s"

    # Native shows no penalty going bidirectional (counts both directions,
    # so bidir ~ 2x one-way); VNET/P does (memory-copy contention).
    native_gain = big["bidir_native"] / big["oneway_native"]
    vnetp_gain = big["bidir_vnetp"] / big["oneway_vnetp"]
    assert native_gain > 1.7
    assert vnetp_gain < native_gain
