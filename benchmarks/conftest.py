"""Shared benchmark plumbing.

Each benchmark file regenerates one of the paper's tables/figures.  The
pytest-benchmark timer measures the wall time of the (deterministic)
simulation; the reproduced metrics are attached as ``extra_info`` and
printed, and each test asserts the paper's qualitative shape.

Set ``REPRO_FULL=1`` to run the full-size experiments instead of the
reduced (same-shape) quick versions.  Set ``REPRO_JOBS=N`` (N > 1) to
fan simulation points out over N worker processes; results are
row-identical, only wall time changes.  The result cache is never used
here — these are timing runs.
"""

import os

import pytest


FULL = os.environ.get("REPRO_FULL", "") == "1"
JOBS = int(os.environ.get("REPRO_JOBS", "1") or "1")


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment function under the benchmark timer once."""

    def _run(fn, **kwargs):
        kwargs.setdefault("quick", not FULL)
        if JOBS > 1:
            from repro.exec import Engine

            kwargs.setdefault("engine", Engine(jobs=JOBS))
        result = benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)
        benchmark.extra_info["experiment"] = result.experiment_id
        for i, row in enumerate(result.rows):
            benchmark.extra_info[f"row{i}"] = repr(row)
        print()
        print(result.render())
        return result

    return _run
