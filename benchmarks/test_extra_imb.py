"""Beyond the paper: IMB collective benchmarks over the overlay."""

from repro.harness.experiments import extra_imb_collectives


def test_extra_imb_collectives(run_experiment):
    result = run_experiment(extra_imb_collectives)
    by_name = {r["collective"]: r for r in result.rows}
    for name, row in by_name.items():
        assert 1.2 < row["ratio"] < 3.2, f"{name} ratio {row['ratio']:.2f}"
    # Barrier is pure latency: it sits at the high end of the ratios.
    assert by_name["Barrier"]["ratio"] >= by_name["Alltoall"]["ratio"] - 0.4
