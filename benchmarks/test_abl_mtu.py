"""Ablation: guest MTU and fragmentation (Sect. 4.4)."""

from repro.harness.experiments import abl_mtu


def test_abl_mtu(run_experiment):
    result = run_experiment(abl_mtu)
    by_mtu = {r["mtu"]: r for r in result.rows}

    # Larger MTUs amortise per-packet cost.
    assert by_mtu[4000]["udp_gbps"] > by_mtu[1458]["udp_gbps"] * 1.3
    assert by_mtu[8958]["udp_gbps"] > by_mtu[4000]["udp_gbps"]
    # 8958 is the largest MTU whose encapsulation avoids fragmentation on
    # a 9000-byte physical network.
    assert by_mtu[8958]["fits"] and not by_mtu[9100]["fits"]
    # Just past the boundary, fragmentation costs eat the MTU gain: the
    # 9100 configuration must not beat the fragmentation-free 8958 one.
    assert by_mtu[9100]["udp_gbps"] <= by_mtu[8958]["udp_gbps"] * 1.02
