"""Fig. 10: IMB PingPong one-way latency on 10G."""

from repro.harness.experiments import fig10


def test_fig10_mpi_pingpong_latency(run_experiment):
    result = run_experiment(fig10)
    small = result.rows[0]
    # Paper anchors: VNET/P ~55 us small-message one-way, ~2.5x native.
    assert 40 < small["vnetp_us"] < 80
    ratio = small["vnetp_us"] / small["native_us"]
    assert 1.8 < ratio < 3.2, f"small-message ratio {ratio:.2f}"
    # The relative gap narrows as messages grow (Fig. 10 discussion).
    big = result.rows[-1]
    big_ratio = big["vnetp_us"] / big["native_us"]
    assert big_ratio < ratio
