"""Sect. 6.2 text numbers: VNET/P over Cray Gemini (IPoG)."""

from repro.harness.experiments import sec62_gemini


def test_sec62_gemini(run_experiment):
    result = run_experiment(sec62_gemini)
    row = result.rows[0]
    # Paper: VNET/P achieves ~1.6 GB/s (13 Gbps) on the 40 Gbps fabric —
    # i.e. useful but far from peak, with native IPoG above it.
    assert 1.2 < row["vnetp_GBps"] < 2.2, f"{row['vnetp_GBps']:.2f} GB/s"
    assert row["native_GBps"] > row["vnetp_GBps"]
    assert row["vnetp_GBps"] < 5.0  # the 40 Gbps peak is far away
