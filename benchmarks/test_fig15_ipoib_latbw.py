"""Fig. 15: HPCC latency-bandwidth over IPoIB."""

from repro.harness.experiments import fig15


def test_fig15_ipoib_latbw(run_experiment):
    result = run_experiment(fig15)
    for row in result.rows:
        nat, vp = row["native"], row["vnetp"]
        bw_ratio = vp["pingpong_bw_MBps"] / nat["pingpong_bw_MBps"]
        lat_ratio = vp["pingpong_lat_us"] / nat["pingpong_lat_us"]
        ring_ratio = vp["random_ring_bw_MBps"] / nat["random_ring_bw_MBps"]
        # Paper: pingpong 70-75 % of native bw at 3-4x latency; rings ~50-55 %.
        assert 0.55 < bw_ratio < 0.90, f"pingpong bw ratio {bw_ratio:.0%}"
        assert 2.0 < lat_ratio < 5.0, f"latency ratio {lat_ratio:.1f}"
        assert 0.40 < ring_ratio < 0.85, f"ring bw ratio {ring_ratio:.0%}"
