"""Ablation: poll-loop yield strategies (Sect. 4.8)."""

from repro.harness.experiments import abl_yield_strategy


def test_abl_yield_strategy(run_experiment):
    result = run_experiment(abl_yield_strategy)
    rows = {r["strategy"]: r for r in result.rows}
    imm, timed, adaptive = rows["immediate"], rows["timed"], rows["adaptive"]

    # Timed yield pays sleep-quantum latency on every wakeup; immediate
    # yield is the latency-optimal configuration (Table 1's choice).
    assert timed["rtt_us"] > imm["rtt_us"] * 1.5
    assert adaptive["rtt_us"] >= imm["rtt_us"]
    # Throughput is essentially unaffected: streaming loops never sleep.
    assert timed["udp_gbps"] > imm["udp_gbps"] * 0.9
