"""Fig. 5: receive-throughput scaling with dispatcher cores."""

from repro.harness.experiments import fig05


def test_fig05_dispatcher_scaling(run_experiment):
    result = run_experiment(fig05)
    rates = [row["gbps"] for row in result.rows]
    # Shape: adding a dispatcher core increases throughput, then saturates.
    assert rates[1] > rates[0] * 1.15, "second dispatcher core must help"
    assert rates[2] >= rates[1] * 0.95, "third core must not regress"
