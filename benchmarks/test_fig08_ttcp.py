"""Fig. 8: end-to-end TCP throughput and UDP goodput (ttcp)."""

from repro.harness.experiments import fig08


def test_fig08_ttcp(run_experiment):
    result = run_experiment(fig08)
    rows = {r["config"]: r for r in result.rows}
    native_1g = rows["Native-1G (1500)"]
    vnetp_1g = rows["VNET/P-1G (1500)"]
    vnetu_1g = rows["VNET/U-1G (1500)"]
    native_10g = rows["Native-10G (9000)"]
    vnetp_10g = rows["VNET/P-10G (9000)"]

    # 1G: native hits line rate; VNET/P is essentially native; VNET/U is
    # an order of magnitude slower than VNET/P at 10G-equivalent terms.
    assert native_1g["tcp_mbps"] > 850
    assert vnetp_1g["tcp_mbps"] > 0.9 * native_1g["tcp_mbps"]
    assert vnetp_1g["udp_mbps"] > 0.9 * native_1g["udp_mbps"]
    # VNET/U ~71 MB/s = ~570 Mbps, far below VNET/P.
    assert vnetu_1g["tcp_mbps"] < 0.75 * vnetp_1g["tcp_mbps"]

    # 10G: native near wire rate; VNET/P ~70-85 % of native (paper: 78 %
    # TCP / 74 % UDP).
    assert native_10g["tcp_mbps"] > 9_000
    tcp_ratio = vnetp_10g["tcp_mbps"] / native_10g["tcp_mbps"]
    udp_ratio = vnetp_10g["udp_mbps"] / native_10g["udp_mbps"]
    assert 0.65 < tcp_ratio < 0.90, f"TCP ratio {tcp_ratio:.0%}"
    assert 0.60 < udp_ratio < 0.85, f"UDP ratio {udp_ratio:.0%}"

    # The kernel-level VNET/P provides roughly 10x the bandwidth of the
    # user-level VNET/U (paper abstract).
    assert vnetp_10g["tcp_mbps"] > 8 * vnetu_1g["tcp_mbps"]
