"""Fig. 13: HPCC MPIRandomAccess (GUPs) and MPIFFT, 10G."""

from repro.harness.experiments import fig13


def test_fig13_hpcc_apps(run_experiment):
    result = run_experiment(fig13)
    for row in result.rows:
        gups_ratio = row["gups_vnetp"] / row["gups_native"]
        fft_ratio = row["fft_vnetp"] / row["fft_native"]
        # Paper: RandomAccess 65-70 % of native; FFT 60-70 %.
        assert 0.55 < gups_ratio < 0.85, f"GUPs ratio {gups_ratio:.0%} @ {row['procs']}"
        assert 0.55 < fft_ratio < 0.85, f"FFT ratio {fft_ratio:.0%} @ {row['procs']}"
    # Performance scales with process count under both configurations.
    first, last = result.rows[0], result.rows[-1]
    assert last["gups_native"] > first["gups_native"]
    assert last["gups_vnetp"] > first["gups_vnetp"]
    assert last["fft_vnetp"] > first["fft_vnetp"]
